"""Tests for the structural Guibas–Liang systolic queue (Figure 4)."""

from dataclasses import dataclass

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.network.systolic_queue import SystolicQueue


@dataclass
class Item:
    key: int
    serial: int


def key_match(queued: Item, new: Item) -> bool:
    return queued.key == new.key


def never_match(queued: Item, new: Item) -> bool:
    return False


class TestFifo:
    def test_items_exit_in_insertion_order(self):
        queue = SystolicQueue(rows=8, match_fn=never_match)
        items = [Item(key=i, serial=i) for i in range(6)]
        order = []
        pending = list(items)
        for _ in range(100):
            if pending and queue.insert(pending[0]):
                pending.pop(0)
            exited = queue.step()
            if exited:
                order.append(exited.item.serial)
            if len(order) == len(items):
                break
        assert order == [0, 1, 2, 3, 4, 5]

    def test_fall_through_when_empty(self):
        """Items are not delayed if the queue is empty and the next
        switch can receive them — the paper's fourth observation."""
        queue = SystolicQueue(rows=4, match_fn=never_match)
        queue.insert(Item(key=0, serial=0))
        exits = []
        for _ in range(6):
            exited = queue.step()
            if exited:
                exits.append(exited)
        assert len(exits) == 1

    def test_blocked_exit_holds_items(self):
        queue = SystolicQueue(rows=4, match_fn=never_match)
        queue.insert(Item(key=0, serial=0))
        for _ in range(5):
            assert queue.step(exit_ready=False) is None
        assert queue.occupancy() == 1
        # now allow the exit
        out = None
        for _ in range(4):
            out = out or queue.step(exit_ready=True)
        assert out is not None and out.item.serial == 0


class TestThroughput:
    def test_sustains_one_in_one_out(self):
        """As long as the queue is neither full nor empty, one item can
        enter and one exit per cycle."""
        queue = SystolicQueue(rows=8, match_fn=never_match)
        inserted = exited_count = 0
        serial = 0
        for cycle in range(64):
            if queue.insert(Item(key=serial, serial=serial)):
                inserted += 1
                serial += 1
            if queue.step():
                exited_count += 1
        assert inserted >= 32  # at least every other cycle
        assert exited_count >= inserted - queue.rows * 2

    def test_capacity_bounded(self):
        queue = SystolicQueue(rows=3, match_fn=never_match)
        accepted = 0
        for i in range(20):
            if queue.insert(Item(key=i, serial=i)):
                accepted += 1
            queue.step(exit_ready=False)
        assert accepted <= 7  # 2 columns * 3 rows is the hard ceiling


class TestMatching:
    def test_matched_pair_exits_together(self):
        # Hold the exit (downstream busy) so the rising new item passes
        # the queued one — the scenario where the comparators fire.
        queue = SystolicQueue(rows=8, match_fn=key_match)
        first = Item(key=7, serial=0)
        second = Item(key=7, serial=1)
        queue.insert(first)
        queue.step(exit_ready=False)
        queue.insert(second)
        queue.step(exit_ready=False)
        exits = queue.drain()
        combined = [e for e in exits if e.matched is not None]
        assert len(combined) == 1
        assert combined[0].item is first
        assert combined[0].matched is second

    def test_unmatched_keys_exit_separately(self):
        queue = SystolicQueue(rows=8, match_fn=key_match)
        queue.insert(Item(key=1, serial=0))
        queue.step(exit_ready=False)
        queue.insert(Item(key=2, serial=1))
        exits = queue.drain()
        assert all(e.matched is None for e in exits)
        assert len(exits) == 2

    def test_pairwise_only_in_structure(self):
        """Three same-key items: the first pairs with the second; the
        third must exit alone (a queued item matches at most once)."""
        queue = SystolicQueue(rows=8, match_fn=key_match)
        items = [Item(key=5, serial=i) for i in range(3)]
        queue.insert(items[0])
        queue.step(exit_ready=False)
        queue.insert(items[1])
        queue.step(exit_ready=False)
        queue.insert(items[2])
        queue.step(exit_ready=False)
        queue.step(exit_ready=False)
        exits = queue.drain()
        matched = [e for e in exits if e.matched is not None]
        alone = [e for e in exits if e.matched is None]
        assert len(matched) == 1
        assert len(alone) == 1
        assert alone[0].item.serial == 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=10))
    def test_nothing_lost_nothing_duplicated(self, keys):
        """Conservation: every inserted item leaves exactly once, either
        as a queue exit or as a match partner."""
        queue = SystolicQueue(rows=12, match_fn=key_match)
        items = [Item(key=k, serial=i) for i, k in enumerate(keys)]
        pending = list(items)
        seen: list[int] = []
        for _ in range(400):
            if pending and queue.insert(pending[0]):
                pending.pop(0)
            exited = queue.step()
            if exited:
                seen.append(exited.item.serial)
                if exited.matched is not None:
                    seen.append(exited.matched.serial)
            if not pending and queue.occupancy() == 0:
                break
        assert sorted(seen) == list(range(len(items)))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=12))
    def test_fifo_without_matches(self, serials):
        queue = SystolicQueue(rows=16, match_fn=never_match)
        items = [Item(key=s, serial=i) for i, s in enumerate(serials)]
        pending = list(items)
        order: list[int] = []
        for _ in range(400):
            if pending and queue.insert(pending[0]):
                pending.pop(0)
            exited = queue.step()
            if exited:
                order.append(exited.item.serial)
            if not pending and queue.occupancy() == 0:
                break
        assert order == sorted(order)
