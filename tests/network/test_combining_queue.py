"""Tests for the behavioral combining queue (section 3.3.1)."""

import pytest

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.network.message import Message
from repro.network.systolic_queue import CombiningQueue, QueueFullError


def msg(op, mm=0, offset=None, tag=None, origin=0):
    if offset is None:
        offset = op.address
    return Message(
        op=op, mm=mm, offset=offset, origin=origin,
        tag=tag if tag is not None else id(op) % 100000,
        digits=[0, 0, 0],
    )


class TestFifoBehavior:
    def test_fifo_order(self):
        queue = CombiningQueue()
        messages = [msg(Load(i), offset=i, tag=i) for i in range(5)]
        for m in messages:
            queue.insert(m)
        assert [queue.pop().tag for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_head_without_pop(self):
        queue = CombiningQueue()
        queue.insert(msg(Load(1), tag=7))
        assert queue.head().tag == 7
        assert len(queue) == 1

    def test_empty_head_is_none(self):
        assert CombiningQueue().head() is None


class TestCapacity:
    def test_packet_accounting(self):
        queue = CombiningQueue(capacity_packets=4)
        queue.insert(msg(Store(0, 1), offset=0, tag=1))  # 3 packets
        assert queue.used_packets == 3
        assert queue.can_accept(1)
        assert not queue.can_accept(3)

    def test_full_queue_rejects_uncombinable(self):
        queue = CombiningQueue(capacity_packets=3)
        queue.insert(msg(Store(0, 1), offset=0, tag=1))
        with pytest.raises(QueueFullError):
            queue.insert(msg(Load(9), offset=9, tag=2))

    def test_full_queue_still_combines(self):
        """Combining deletes R-new, so it needs no queue space — the
        paper's design lets a full queue keep absorbing combinable
        requests."""
        queue = CombiningQueue(capacity_packets=3)
        queue.insert(msg(FetchAdd(0, 1), offset=0, tag=1))
        outcome = queue.insert(msg(FetchAdd(0, 2), offset=0, tag=2))
        assert outcome.combined_with is not None
        assert len(queue) == 1

    def test_pop_releases_packets(self):
        queue = CombiningQueue(capacity_packets=3)
        queue.insert(msg(Store(0, 1), offset=0, tag=1))
        queue.pop()
        assert queue.used_packets == 0
        assert queue.can_accept(3)

    def test_infinite_queue_accepts_everything(self):
        queue = CombiningQueue(capacity_packets=None)
        for i in range(100):
            queue.insert(msg(Load(i + 100), offset=i + 100, tag=i))
        assert len(queue) == 100


class TestCombining:
    def test_combines_matching_cell(self):
        queue = CombiningQueue()
        first = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(first)
        outcome = queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert outcome.combined_with is first
        assert first.op.increment == 3  # forward op replaced in place
        assert len(queue) == 1
        assert queue.total_combined == 1

    def test_no_combine_across_cells(self):
        queue = CombiningQueue()
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        outcome = queue.insert(msg(FetchAdd(5, 2), offset=5, tag=2))
        assert outcome.combined_with is None
        assert len(queue) == 2

    def test_no_combine_across_modules(self):
        queue = CombiningQueue()
        queue.insert(msg(FetchAdd(4, 1), mm=0, offset=4, tag=1))
        outcome = queue.insert(msg(FetchAdd(4, 2), mm=1, offset=4, tag=2))
        assert outcome.combined_with is None

    def test_pairwise_only_limits_chains(self):
        """A queued request that already absorbed a partner cannot
        absorb another (the wait-buffer-simplicity rule)."""
        queue = CombiningQueue(pairwise_only=True)
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        assert queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2)).combined_with
        third = queue.insert(msg(FetchAdd(4, 4), offset=4, tag=3))
        assert third.combined_with is None  # queued separately
        assert len(queue) == 2

    def test_unlimited_combining_ablation(self):
        queue = CombiningQueue(pairwise_only=False)
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        assert queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2)).combined_with
        assert queue.insert(msg(FetchAdd(4, 4), offset=4, tag=3)).combined_with
        assert len(queue) == 1
        assert queue.head().op.increment == 7

    def test_combining_disabled(self):
        queue = CombiningQueue(combining=False)
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        outcome = queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert outcome.combined_with is None
        assert len(queue) == 2

    def test_packet_growth_on_combine_accounted(self):
        """Load (1 packet) absorbed into... a Load+FA combine turns the
        queued 1-packet Load into a 3-packet FetchAdd; occupancy must
        track it."""
        queue = CombiningQueue(capacity_packets=10)
        queue.insert(msg(Load(4), offset=4, tag=1))
        assert queue.used_packets == 1
        queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert queue.used_packets == 3

    def test_replies_never_combine(self):
        queue = CombiningQueue()
        request = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(request)
        reply = msg(FetchAdd(4, 2), offset=4, tag=2)
        reply.is_reply = True
        outcome = queue.insert(reply)
        assert outcome.combined_with is None


class TestKeyedIndexEdgeCases:
    """Edge cases of the ``(mm, offset)`` keyed-address index (PR 6).

    The index must present exactly the candidates a linear scan of the
    FIFO would, in the same order, across every slot lifecycle:
    append, combine (which under pairwise rules unindexes the slot),
    pop, and re-append of a previously consumed message.
    """

    def _index_of(self, queue):
        return queue._by_key

    def assert_index_consistent(self, queue):
        """The index is exactly the un-matchable-filtered FIFO."""
        expected: dict = {}
        for slot in queue._slots:
            if queue.pairwise_only and slot.already_combined:
                continue  # unindexed at commit time
            key = (slot.message.mm, slot.message.offset)
            expected.setdefault(key, []).append(slot)
        actual = self._index_of(queue)
        assert {k: [id(s) for s in v] for k, v in actual.items()} == {
            k: [id(s) for s in v] for k, v in expected.items()
        }

    def test_partner_order_after_pop_and_reappend(self):
        """A message popped and re-appended goes to the *back* of its
        key's candidate list: a later combinable arrival must pair with
        the older queued request, exactly as a linear FIFO scan would."""
        queue = CombiningQueue()
        first = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(first)
        popped = queue.pop()
        assert popped is first
        self.assert_index_consistent(queue)
        assert not self._index_of(queue)  # fully unindexed after pop

        second = msg(FetchAdd(4, 2), offset=4, tag=2)
        queue.insert(second)
        # re-append via the search-free path (else it would combine):
        # the recycled message is now YOUNGER than second
        queue.append(first)
        self.assert_index_consistent(queue)

        probe = msg(FetchAdd(4, 8), offset=4, tag=3)
        partner = queue.find_partner(probe)
        assert partner is not None
        slot, _ = partner
        assert slot.message is second  # oldest-first, not the re-append

    def test_reappend_after_consume_matches_once_per_slot(self):
        """Pop the partner-consumed slot, re-append its message, and
        the fresh slot must be independently combinable (the old slot's
        already_combined state must not leak through the index)."""
        queue = CombiningQueue()
        first = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(first)
        assert queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2)).combined_with
        # the combined slot was unindexed at commit; pop it
        consumed = queue.pop()
        assert consumed is first
        self.assert_index_consistent(queue)
        assert len(queue) == 0 and not self._index_of(queue)

        queue.insert(first)  # same Message object re-enters
        self.assert_index_consistent(queue)
        outcome = queue.insert(msg(FetchAdd(4, 4), offset=4, tag=4))
        assert outcome.combined_with is first  # fresh slot, fresh pairing
        self.assert_index_consistent(queue)

    def test_commit_combine_on_full_queue_keeps_index_consistent(self):
        """Combining into a full queue (legal: R-new is deleted, no
        space needed) must unindex the consumed slot even though no
        append happened, and later arrivals must neither match the
        consumed slot nor corrupt the index when refused for space."""
        queue = CombiningQueue(capacity_packets=3)
        first = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(first)  # 3 packets: full
        assert not queue.can_accept(1)
        outcome = queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert outcome.combined_with is first
        self.assert_index_consistent(queue)
        assert not self._index_of(queue)  # pairwise slot dropped from index

        # an identical arrival now finds no partner (slot consumed) and
        # no space — refused with the index untouched
        with pytest.raises(QueueFullError):
            queue.insert(msg(FetchAdd(4, 8), offset=4, tag=3))
        self.assert_index_consistent(queue)
        assert len(queue) == 1

        # popping the combined slot must not double-unindex
        queue.pop()
        self.assert_index_consistent(queue)
        assert queue.used_packets == 0 and not self._index_of(queue)

    def test_commit_combine_full_queue_unlimited_keeps_slot_indexed(self):
        """Without the pairwise rule the combined slot stays indexed on
        a full queue and keeps absorbing; pop must then unindex it."""
        queue = CombiningQueue(capacity_packets=3, pairwise_only=False)
        first = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(first)
        assert queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2)).combined_with
        self.assert_index_consistent(queue)
        assert list(self._index_of(queue)) == [(0, 4)]  # still matchable
        assert queue.insert(msg(FetchAdd(4, 4), offset=4, tag=3)).combined_with
        assert queue.head().op.increment == 7
        queue.pop()
        self.assert_index_consistent(queue)
        assert not self._index_of(queue)

    def test_interleaved_lifecycle_stays_consistent(self):
        """A randomized-ish mixed workload: append/combine/pop across
        two keys, checking index == FIFO-filter at every step."""
        queue = CombiningQueue()
        ops = [
            msg(FetchAdd(4, 1), offset=4, tag=10),
            msg(FetchAdd(9, 1), offset=9, tag=11),
            msg(FetchAdd(4, 2), offset=4, tag=12),   # combines into tag 10
            msg(FetchAdd(4, 4), offset=4, tag=13),   # queued (pairwise)
            msg(FetchAdd(9, 2), offset=9, tag=14),   # combines into tag 11
        ]
        for message in ops:
            queue.insert(message)
            self.assert_index_consistent(queue)
        assert queue.total_combined == 2
        while len(queue):
            queue.pop()
            self.assert_index_consistent(queue)
        assert not self._index_of(queue)
