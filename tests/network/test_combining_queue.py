"""Tests for the behavioral combining queue (section 3.3.1)."""

import pytest

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.network.message import Message
from repro.network.systolic_queue import CombiningQueue, QueueFullError


def msg(op, mm=0, offset=None, tag=None, origin=0):
    if offset is None:
        offset = op.address
    return Message(
        op=op, mm=mm, offset=offset, origin=origin,
        tag=tag if tag is not None else id(op) % 100000,
        digits=[0, 0, 0],
    )


class TestFifoBehavior:
    def test_fifo_order(self):
        queue = CombiningQueue()
        messages = [msg(Load(i), offset=i, tag=i) for i in range(5)]
        for m in messages:
            queue.insert(m)
        assert [queue.pop().tag for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_head_without_pop(self):
        queue = CombiningQueue()
        queue.insert(msg(Load(1), tag=7))
        assert queue.head().tag == 7
        assert len(queue) == 1

    def test_empty_head_is_none(self):
        assert CombiningQueue().head() is None


class TestCapacity:
    def test_packet_accounting(self):
        queue = CombiningQueue(capacity_packets=4)
        queue.insert(msg(Store(0, 1), offset=0, tag=1))  # 3 packets
        assert queue.used_packets == 3
        assert queue.can_accept(1)
        assert not queue.can_accept(3)

    def test_full_queue_rejects_uncombinable(self):
        queue = CombiningQueue(capacity_packets=3)
        queue.insert(msg(Store(0, 1), offset=0, tag=1))
        with pytest.raises(QueueFullError):
            queue.insert(msg(Load(9), offset=9, tag=2))

    def test_full_queue_still_combines(self):
        """Combining deletes R-new, so it needs no queue space — the
        paper's design lets a full queue keep absorbing combinable
        requests."""
        queue = CombiningQueue(capacity_packets=3)
        queue.insert(msg(FetchAdd(0, 1), offset=0, tag=1))
        outcome = queue.insert(msg(FetchAdd(0, 2), offset=0, tag=2))
        assert outcome.combined_with is not None
        assert len(queue) == 1

    def test_pop_releases_packets(self):
        queue = CombiningQueue(capacity_packets=3)
        queue.insert(msg(Store(0, 1), offset=0, tag=1))
        queue.pop()
        assert queue.used_packets == 0
        assert queue.can_accept(3)

    def test_infinite_queue_accepts_everything(self):
        queue = CombiningQueue(capacity_packets=None)
        for i in range(100):
            queue.insert(msg(Load(i + 100), offset=i + 100, tag=i))
        assert len(queue) == 100


class TestCombining:
    def test_combines_matching_cell(self):
        queue = CombiningQueue()
        first = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(first)
        outcome = queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert outcome.combined_with is first
        assert first.op.increment == 3  # forward op replaced in place
        assert len(queue) == 1
        assert queue.total_combined == 1

    def test_no_combine_across_cells(self):
        queue = CombiningQueue()
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        outcome = queue.insert(msg(FetchAdd(5, 2), offset=5, tag=2))
        assert outcome.combined_with is None
        assert len(queue) == 2

    def test_no_combine_across_modules(self):
        queue = CombiningQueue()
        queue.insert(msg(FetchAdd(4, 1), mm=0, offset=4, tag=1))
        outcome = queue.insert(msg(FetchAdd(4, 2), mm=1, offset=4, tag=2))
        assert outcome.combined_with is None

    def test_pairwise_only_limits_chains(self):
        """A queued request that already absorbed a partner cannot
        absorb another (the wait-buffer-simplicity rule)."""
        queue = CombiningQueue(pairwise_only=True)
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        assert queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2)).combined_with
        third = queue.insert(msg(FetchAdd(4, 4), offset=4, tag=3))
        assert third.combined_with is None  # queued separately
        assert len(queue) == 2

    def test_unlimited_combining_ablation(self):
        queue = CombiningQueue(pairwise_only=False)
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        assert queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2)).combined_with
        assert queue.insert(msg(FetchAdd(4, 4), offset=4, tag=3)).combined_with
        assert len(queue) == 1
        assert queue.head().op.increment == 7

    def test_combining_disabled(self):
        queue = CombiningQueue(combining=False)
        queue.insert(msg(FetchAdd(4, 1), offset=4, tag=1))
        outcome = queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert outcome.combined_with is None
        assert len(queue) == 2

    def test_packet_growth_on_combine_accounted(self):
        """Load (1 packet) absorbed into... a Load+FA combine turns the
        queued 1-packet Load into a 3-packet FetchAdd; occupancy must
        track it."""
        queue = CombiningQueue(capacity_packets=10)
        queue.insert(msg(Load(4), offset=4, tag=1))
        assert queue.used_packets == 1
        queue.insert(msg(FetchAdd(4, 2), offset=4, tag=2))
        assert queue.used_packets == 3

    def test_replies_never_combine(self):
        queue = CombiningQueue()
        request = msg(FetchAdd(4, 1), offset=4, tag=1)
        queue.insert(request)
        reply = msg(FetchAdd(4, 2), offset=4, tag=2)
        reply.is_reply = True
        outcome = queue.insert(reply)
        assert outcome.combined_with is None
