"""The pluggable topology layer: registry, direct networks, invariants.

Three groups of guarantees:

* the registry (`make_topology` & co.) resolves names, validates sizes
  with actionable messages, and rejects duplicates;
* the hypercube and mesh satisfy the wiring contract the simulator
  relies on — deterministic routes, amalgam-reversible paths,
  reply-entry consistency, exact structural facts;
* property tests (hypothesis): the Omega shuffle/unshuffle bijection
  for every arity, and route interning returning the *same* tuple
  object per destination (what the hot path banks on).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.network import (
    HypercubeTopology,
    MeshTopology,
    OmegaTopology,
    Topology,
    make_topology,
    register_topology,
    topology_names,
    validate_topology_size,
)

ALL_NAMES = ("omega", "hypercube", "mesh")


def build(name: str, n: int):
    return make_topology(name, n, 2)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_NAMES) <= set(topology_names())

    def test_make_topology_builds_the_right_class(self):
        assert isinstance(build("omega", 16), OmegaTopology)
        assert isinstance(build("hypercube", 16), HypercubeTopology)
        assert isinstance(build("mesh", 16), MeshTopology)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="omega"):
            make_topology("torus", 16, 2)
        with pytest.raises(ValueError, match="unknown topology"):
            validate_topology_size("torus", 16)

    def test_invalid_size_raises_before_building(self):
        with pytest.raises(ValueError, match="nearest valid sizes"):
            make_topology("hypercube", 100, 2)
        with pytest.raises(ValueError, match="nearest valid sizes"):
            make_topology("mesh", 108, 2)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology(
                "omega",
                lambda n, k: OmegaTopology(n, k),
                validate_size=lambda n, k: None,
            )

    def test_protocol_conformance(self):
        for name in ALL_NAMES:
            assert isinstance(build(name, 16), Topology)


# ----------------------------------------------------------------------
# the wiring contract, checked end to end for every (source, dest)
# ----------------------------------------------------------------------
def walk_forward(topo, source: int, dest: int):
    """Follow the routing digits through ``forward_target`` exactly the
    way :class:`MultistageNetwork` wires delivery, recording the amalgam
    (arrival ports) along the way.  Returns (eject_stage, mm, amalgam).
    """
    digits = topo.route_tuple(dest, source)
    switch, in_port = topo.inject_point(source)
    amalgam = {}
    stage = 0
    while True:
        # (switch, arrival port, departure port) — the arrival port is
        # what the amalgam records; the departure port names the queue
        # whose wait buffer holds the combining records.
        amalgam[stage] = (switch, in_port, digits[stage])
        target = topo.forward_target(stage, switch, digits[stage])
        assert target is not None, (
            f"route {source}->{dest} fell off the grid at stage {stage}"
        )
        if target[0] == "mm":
            return stage, target[1], amalgam
        _kind, switch, in_port = target
        stage += 1


def walk_return(topo, eject_stage: int, mm: int, amalgam) -> int:
    """Retrace the amalgam through ``return_target`` back to a PE."""
    stage, switch, _port = topo.reply_entry(mm, amalgam[0][0])
    assert stage == eject_stage
    while True:
        out_port = amalgam[stage][1]
        target = topo.return_target(stage, switch, out_port)
        assert target is not None, (
            f"reply from mm {mm} fell off the grid at stage {stage}"
        )
        if target[0] == "pe":
            assert stage == 0
            return target[1]
        _kind, switch, mm_port = target
        stage -= 1
        assert (switch, mm_port) == amalgam[stage][::2], (
            "reply re-entered a different queue than the request departed"
        )


@pytest.mark.parametrize("name,n", [
    ("omega", 16), ("hypercube", 16), ("mesh", 16), ("mesh", 9),
])
class TestDeliveryInvariants:
    def test_every_pair_delivers_and_returns(self, name, n):
        topo = build(name, n)
        for source in range(n):
            for dest in range(n):
                eject_stage, mm, amalgam = walk_forward(topo, source, dest)
                assert mm == dest
                assert walk_return(topo, eject_stage, mm, amalgam) == source

    def test_forward_path_matches_target_walk(self, name, n):
        topo = build(name, n)
        for source in range(n):
            for dest in range(n):
                path = topo.forward_path(source, dest)
                eject_stage, _mm, amalgam = walk_forward(topo, source, dest)
                assert eject_stage == len(path) - 1
                assert [amalgam[s][0] for s in sorted(amalgam)] == [
                    h.switch for h in path
                ]

    def test_combining_invariant_shared_suffix(self, name, n):
        """Two routes to one destination that meet at a (stage, switch)
        must share their entire remaining digit sequence — the property
        pairwise combining relies on."""
        topo = build(name, n)
        dest = n - 1
        seen: dict[tuple[int, int], tuple] = {}
        for source in range(n):
            digits = topo.route_tuple(dest, source)
            path = topo.forward_path(source, dest)
            for hop in path:
                key = (hop.stage, hop.switch)
                suffix = tuple(digits[hop.stage:len(path)])
                if key in seen:
                    assert seen[key] == suffix
                else:
                    seen[key] = suffix


# ----------------------------------------------------------------------
# per-fabric routing facts
# ----------------------------------------------------------------------
class TestHypercube:
    def test_route_is_lowest_dimension_first(self):
        topo = HypercubeTopology(16)
        assert topo.route_tuple(0b1010, source=0b0000)[:2] == (1, 3)
        assert topo.hop_count(0b1010, 0b0000) == 2

    def test_ports_are_self_reverse(self):
        topo = HypercubeTopology(8)
        for node in range(8):
            for port in range(topo.dimensions):
                neighbor = topo._neighbor(node, port)
                assert topo._neighbor(neighbor, port) == node

    def test_self_route_ejects_immediately(self):
        topo = HypercubeTopology(8)
        stage, mm, _ = walk_forward(topo, 5, 5)
        assert (stage, mm) == (0, 5)

    def test_structural_facts(self):
        topo = HypercubeTopology(16)
        assert topo.n_switches == 16
        assert topo.n_links == 16 * 4 // 2
        assert topo.stages == 5
        assert topo.switch_arity == 5
        assert "dimension-order" in topo.describe()

    def test_hop_classes_match_exact_mean(self):
        topo = HypercubeTopology(16)
        pairs = [(s, d) for s in range(16) for d in range(16)]
        exact = sum(topo.hop_count(s, d) for s, d in pairs) / len(pairs)
        declared = dict(
            (label, count) for label, count, _f in topo.hop_classes()
        )
        assert declared["link"] == pytest.approx(exact)


class TestMesh:
    def test_xy_routing_resolves_x_first(self):
        topo = MeshTopology(16)  # 4x4; node = y*4 + x
        route = topo._link_route(0, 10)  # (0,0) -> (2,2)
        assert route == (topo.EAST, topo.EAST, topo.SOUTH, topo.SOUTH)

    def test_boundary_ports_dangle(self):
        topo = MeshTopology(9)
        assert topo._neighbor(0, topo.WEST) is None
        assert topo._neighbor(0, topo.NORTH) is None
        assert topo._neighbor(8, topo.EAST) is None
        assert topo._neighbor(8, topo.SOUTH) is None
        assert topo.forward_target(0, 0, topo.WEST) is None

    def test_reverse_pairs(self):
        topo = MeshTopology(9)
        assert topo._reverse(topo.EAST) == topo.WEST
        assert topo._reverse(topo.SOUTH) == topo.NORTH

    def test_structural_facts(self):
        topo = MeshTopology(16)
        assert topo.n_switches == 16
        assert topo.n_links == 2 * 4 * 3
        assert topo.stages == 7
        assert topo.switch_arity == 5
        assert "XY" in topo.describe()

    def test_hop_classes_match_exact_mean(self):
        topo = MeshTopology(16)
        r = topo.side
        exact_axis = sum(
            abs(a - b) for a in range(r) for b in range(r)
        ) / (r * r)
        declared = dict(
            (label, count) for label, count, _f in topo.hop_classes()
        )
        assert declared["x-link"] == pytest.approx(exact_axis)
        assert declared["y-link"] == pytest.approx(exact_axis)


# ----------------------------------------------------------------------
# paths_through_switch: range validation (all fabrics) and exactness
# ----------------------------------------------------------------------
class TestPathsThroughSwitch:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_out_of_range_raises(self, name):
        topo = build(name, 16)
        with pytest.raises(ValueError, match="stage"):
            topo.paths_through_switch(-1, 0)
        with pytest.raises(ValueError, match="stage"):
            topo.paths_through_switch(topo.stages, 0)
        with pytest.raises(ValueError, match="switch"):
            topo.paths_through_switch(0, -1)
        with pytest.raises(ValueError, match="switch"):
            topo.paths_through_switch(0, topo.switches_per_stage)

    @pytest.mark.parametrize("name,n", [("hypercube", 8), ("mesh", 9)])
    def test_counts_partition_the_paths(self, name, n):
        """At each stage the per-switch counts must sum to the number
        of (s, d) pairs whose unrolled path reaches that stage."""
        topo = build(name, n)
        lengths = [
            len(topo.forward_path(s, d))
            for s in range(n) for d in range(n)
        ]
        for stage in range(topo.stages):
            total = sum(
                topo.paths_through_switch(stage, sw)
                for sw in range(topo.switches_per_stage)
            )
            assert total == sum(1 for L in lengths if stage < L)


# ----------------------------------------------------------------------
# property tests (hypothesis)
# ----------------------------------------------------------------------
class TestShuffleProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from([(8, 2), (16, 2), (64, 2), (27, 3), (81, 3),
                            (16, 4), (64, 4), (125, 5)]),
           st.data())
    def test_shuffle_unshuffle_inverse_bijection(self, size_k, data):
        """For every arity k, shuffle and unshuffle are mutually inverse
        permutations of the line space."""
        n, k = size_k
        topo = OmegaTopology(n, k)
        line = data.draw(st.integers(0, n - 1))
        assert topo.unshuffle(topo.shuffle(line)) == line
        assert topo.shuffle(topo.unshuffle(line)) == line

    @pytest.mark.parametrize("n,k", [(8, 2), (27, 3), (64, 4)])
    def test_shuffle_is_a_permutation(self, n, k):
        topo = OmegaTopology(n, k)
        assert sorted(topo.shuffle(line) for line in range(n)) == list(range(n))


class TestRouteInterning:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(ALL_NAMES), st.integers(0, 15), st.integers(0, 15))
    def test_route_tuple_returns_identical_object(self, name, source, dest):
        """The hot path compares and hashes routes by identity; repeated
        lookups must return the *same* interned tuple object."""
        topo = build(name, 16)
        first = topo.route_tuple(dest, source)
        second = topo.route_tuple(dest, source)
        assert first is second

    def test_translation_invariant_routes_share_objects(self):
        """Direct-network routes are keyed by offset, so equal offsets
        intern to one object across sources."""
        cube = HypercubeTopology(16)
        assert cube.route_tuple(5, source=0) is cube.route_tuple(12, source=9)
