"""Tests for the combining switch (section 3.3)."""

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.network.message import Message
from repro.network.switch import Switch
from repro.network.topology import OmegaTopology


def make_request(op, mm, topo, origin=0, tag=None):
    return Message(
        op=op,
        mm=mm,
        offset=op.address,
        origin=origin,
        tag=tag if tag is not None else 1000 + origin,
        digits=topo.route_digits(mm),
    )


def make_switch(**kwargs):
    return Switch(2, stage=0, index=0, **kwargs)


def delivers_logging(log):
    """Per-port delivery callbacks that record (port, message) and accept."""
    return [
        (lambda msg, _port=port: log.append((_port, msg)) or True)
        for port in range(2)
    ]


ACCEPT_ALL = [lambda msg: True] * 2
REJECT_ALL = [lambda msg: False] * 2

TOPO = OmegaTopology(8, 2)


class TestForwardRouting:
    def test_routes_by_stage_digit(self):
        switch = make_switch()
        # mm=0b100: stage 0 digit is 1 -> lower output port
        message = make_request(Load(0), mm=0b100, topo=TOPO)
        assert switch.offer_forward(0, message, cycle=0)
        assert switch.to_mm[1].head() is message
        assert len(switch.to_mm[0]) == 0

    def test_digit_swapped_with_arrival_port(self):
        switch = make_switch()
        message = make_request(Load(0), mm=0b100, topo=TOPO)
        switch.offer_forward(1, message, cycle=0)
        assert message.digits[0] == 1  # arrival port recorded

    def test_full_queue_refuses_and_restores_digit(self):
        switch = make_switch(queue_capacity_packets=1)
        first = make_request(Load(0), mm=0b100, topo=TOPO, tag=1)
        blocked = make_request(Load(1), mm=0b110, topo=TOPO, tag=2)
        assert switch.offer_forward(0, first, cycle=0)
        assert not switch.offer_forward(0, blocked, cycle=0)
        # the refused message must still route correctly on retry
        assert blocked.digits == TOPO.route_digits(0b110)

    def test_tick_forward_moves_head_downstream(self):
        switch = make_switch()
        message = make_request(Load(0), mm=0b000, topo=TOPO)
        switch.offer_forward(0, message, cycle=0)
        delivered = []
        switch.tick_forward(1, delivers_logging(delivered))
        assert delivered == [(0, message)]
        assert switch.to_mm[0].head() is None

    def test_link_occupancy_throttles(self):
        """A 3-packet message holds the output link for 3 cycles."""
        switch = make_switch()
        a = make_request(Store(0, 5), mm=0, topo=TOPO, tag=1)  # 3 packets
        b = make_request(Store(1, 6), mm=0, topo=TOPO, tag=2)
        switch.offer_forward(0, a, 0)
        switch.offer_forward(0, b, 0)
        sent = []
        for cycle in range(6):
            accept = [
                (lambda msg, _c=cycle: sent.append((_c, msg.tag)) or True)
            ] * 2
            switch.tick_forward(cycle, accept)
        assert sent[0][1] == 1
        assert sent[1][1] == 2
        assert sent[1][0] - sent[0][0] >= 3

    def test_backpressure_keeps_head(self):
        switch = make_switch()
        message = make_request(Load(0), mm=0, topo=TOPO)
        switch.offer_forward(0, message, 0)
        switch.tick_forward(1, REJECT_ALL)  # downstream full
        assert switch.to_mm[0].head() is message
        assert switch.stats.forward_blocked_cycles == 1


class TestCombineAndDecombine:
    def _combined_switch(self):
        switch = make_switch()
        old = make_request(FetchAdd(4, 1), mm=0, topo=TOPO, origin=0, tag=10)
        new = make_request(FetchAdd(4, 2), mm=0, topo=TOPO, origin=1, tag=20)
        assert switch.offer_forward(0, old, 0)
        assert switch.offer_forward(1, new, 0)
        return switch, old, new

    def test_combine_places_wait_record(self):
        switch, old, new = self._combined_switch()
        assert switch.stats.combines == 1
        assert len(switch.to_mm[0]) == 1
        assert switch.to_mm[0].head().op.increment == 3
        assert switch.pending_wait_records() == 1

    def test_reply_fans_out_to_both_requesters(self):
        switch, old, new = self._combined_switch()
        # simulate the combined request going to memory and returning
        forwarded = switch.to_mm[0].pop()
        reply = forwarded.make_reply(100)  # memory held 100
        assert switch.offer_return(0, reply, 5)
        assert switch.stats.decombines == 1
        # two replies queued on the ToPE side, routed by origin digits
        heads = [q.head() for q in switch.to_pe if q.head() is not None]
        values = sorted(m.value for m in heads)
        assert values == [100, 101]  # Y for R-old, Y+e (e=1) for R-new
        tags = sorted(m.tag for m in heads)
        assert tags == [10, 20]

    def test_reply_without_record_routes_straight_through(self):
        switch = make_switch()
        message = make_request(Load(0), mm=0, topo=TOPO, origin=1, tag=7)
        switch.offer_forward(1, message, 0)
        forwarded = switch.to_mm[0].pop()
        reply = forwarded.make_reply(55)
        assert switch.offer_return(0, reply, 3)
        assert switch.to_pe[1].head() is reply  # origin digit = port 1

    def test_reply_refused_when_tope_full_keeps_record(self):
        switch = Switch(2, stage=0, index=0, queue_capacity_packets=3)
        old = make_request(FetchAdd(4, 1), mm=0, topo=TOPO, origin=0, tag=10)
        new = make_request(FetchAdd(4, 2), mm=0, topo=TOPO, origin=0, tag=20)
        switch.offer_forward(0, old, 0)
        switch.offer_forward(0, new, 0)
        # fill the target ToPE queue (both replies head to port 0)
        filler = make_request(Load(9), mm=0, topo=TOPO, origin=0, tag=99)
        filler_reply = filler.make_reply(1)  # 3 packets
        switch.to_pe[0].insert(filler_reply)
        forwarded = switch.to_mm[0].pop()
        reply = forwarded.make_reply(100)
        assert not switch.offer_return(0, reply, 5)
        assert switch.pending_wait_records() == 1  # record retained
        assert reply.value == 100  # rewrite undone for retry

    def test_combining_suppressed_when_wait_buffer_full(self):
        switch = Switch(2, stage=0, index=0, wait_buffer_capacity=0)
        old = make_request(FetchAdd(4, 1), mm=0, topo=TOPO, tag=10)
        new = make_request(FetchAdd(4, 2), mm=0, topo=TOPO, tag=20)
        switch.offer_forward(0, old, 0)
        switch.offer_forward(0, new, 0)
        assert switch.stats.combines == 0
        assert len(switch.to_mm[0]) == 2  # queued separately

    def test_unlimited_combining_unwinds_record_stack(self):
        """With pairwise_only=False a queued request absorbs several
        partners; the reply must fan out to every one with correct
        prefix values, unwinding the wait-record stack innermost-first."""
        switch = Switch(2, stage=0, index=0, pairwise_only=False)
        requests = [
            make_request(FetchAdd(4, inc), mm=0, topo=TOPO, origin=i % 2,
                         tag=10 * (i + 1))
            for i, inc in enumerate([1, 2, 4])
        ]
        for i, request in enumerate(requests):
            assert switch.offer_forward(i % 2, request, 0)
        assert switch.stats.combines == 2
        assert len(switch.to_mm[0]) == 1
        forwarded = switch.to_mm[0].pop()
        assert forwarded.op.increment == 7

        reply = forwarded.make_reply(100)
        assert switch.offer_return(0, reply, 5)
        replies = []
        for queue in switch.to_pe:
            while queue.head() is not None:
                replies.append(queue.pop())
        values = sorted(m.value for m in replies)
        # prefix sums of (1, 2, 4) in combine order from 100
        assert values == [100, 101, 103]
        assert switch.pending_wait_records() == 0

    def test_forward_refuse_then_retry_commits_nothing_until_accepted(self):
        """A refused offer_forward must be side-effect free: no digit
        swap to undo, no stats, and the identical retry succeeds once
        the queue drains (regression for the old mutate-then-undo flow)."""
        switch = make_switch(queue_capacity_packets=1)
        first = make_request(Load(0), mm=0b100, topo=TOPO, tag=1)
        blocked = make_request(Load(1), mm=0b110, topo=TOPO, tag=2)
        assert switch.offer_forward(0, first, cycle=0)
        digits_before = list(blocked.digits)
        packets_before = blocked.packets
        assert not switch.offer_forward(1, blocked, cycle=0)
        assert blocked.digits == digits_before
        assert blocked.packets == packets_before
        assert switch.stats.requests_routed == 1  # only the accepted offer
        # Drain the blocking head; the very same message then routes in.
        switch.tick_forward(1, ACCEPT_ALL)
        assert switch.offer_forward(1, blocked, cycle=2)
        assert blocked.digits[0] == 1  # arrival port recorded at commit
        assert switch.to_mm[1].head() is blocked

    def test_return_refuse_then_retry_delivers_full_fanout(self):
        """A refused offer_return must leave the reply, the wait records,
        and the queues untouched; once the blocking ToPE head drains the
        identical retry commits the whole decombine fan-out."""
        switch = Switch(2, stage=0, index=0, queue_capacity_packets=6)
        old = make_request(FetchAdd(4, 1), mm=0, topo=TOPO, origin=0, tag=10)
        new = make_request(FetchAdd(4, 2), mm=0, topo=TOPO, origin=0, tag=20)
        switch.offer_forward(0, old, 0)
        switch.offer_forward(0, new, 0)
        # Fill the target ToPE queue so the 6-packet fan-out cannot fit.
        filler = make_request(Load(9), mm=0, topo=TOPO, origin=0, tag=99)
        switch.to_pe[0].insert(filler.make_reply(1))  # 3 packets
        forwarded = switch.to_mm[0].pop()
        reply = forwarded.make_reply(100)
        assert not switch.offer_return(0, reply, 5)
        assert reply.value == 100  # untouched, not rewritten-then-undone
        assert reply.packets == 3
        assert switch.pending_wait_records() == 1
        assert switch.stats.decombines == 0
        # Drain the blocker; the same reply then decombines completely.
        switch.tick_return(6, ACCEPT_ALL)
        assert switch.offer_return(0, reply, 7)
        assert switch.pending_wait_records() == 0
        assert switch.stats.decombines == 1
        replies = []
        for queue in switch.to_pe:
            while queue.head() is not None:
                replies.append(queue.pop())
        assert sorted(m.value for m in replies) == [100, 101]
        assert sorted(m.tag for m in replies) == [10, 20]

    def test_heterogeneous_combine_load_satisfied_by_store(self):
        switch = make_switch()
        old = make_request(Load(4), mm=0, topo=TOPO, origin=0, tag=10)
        new = make_request(Store(4, 9), mm=0, topo=TOPO, origin=1, tag=20)
        switch.offer_forward(0, old, 0)
        switch.offer_forward(1, new, 0)
        forwarded = switch.to_mm[0].pop()
        assert isinstance(forwarded.op, Store)
        ack = forwarded.make_reply(None)
        assert switch.offer_return(0, ack, 2)
        replies = {q.head().tag: q.head() for q in switch.to_pe if q.head()}
        assert replies[10].value == 9  # load satisfied from store datum
        assert replies[20].value is None  # store acked
