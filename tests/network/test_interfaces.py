"""Tests for the PNI and MNI (section 3.4)."""

import pytest

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.memory.hashing import InterleavedTranslation
from repro.memory.module import MemoryModule
from repro.network.interfaces import MNI, OutstandingConflictError, PNI
from repro.network.topology import OmegaTopology


def make_pni(pe=0, n=8, max_outstanding=None):
    return PNI(
        pe,
        OmegaTopology(n, 2),
        InterleavedTranslation(n, 64),
        max_outstanding=max_outstanding,
    )


class TestPNIIssue:
    def test_issue_translates_and_tags(self):
        pni = make_pni()
        tag = pni.issue(Load(9), cycle=0)  # addr 9 -> module 1, offset 1
        message = pni.outbound[0]
        assert message.tag == tag
        assert message.mm == 1
        assert message.offset == 1
        assert message.op.address == 1  # physical offset carried

    def test_same_location_conflict_detected(self):
        pni = make_pni()
        pni.issue(Load(9), cycle=0)
        assert not pni.can_issue(FetchAdd(9, 1))
        with pytest.raises(OutstandingConflictError):
            pni.issue(FetchAdd(9, 1), cycle=0)

    def test_different_locations_pipeline(self):
        pni = make_pni()
        pni.issue(Load(9), 0)
        assert pni.can_issue(Load(10))
        pni.issue(Load(10), 0)
        assert pni.outstanding() == 2

    def test_outstanding_window(self):
        pni = make_pni(max_outstanding=2)
        pni.issue(Load(1), 0)
        pni.issue(Load(2), 0)
        assert not pni.can_issue(Load(3))

    def test_tick_outbound_respects_link_occupancy(self):
        pni = make_pni()
        pni.issue(Store(1, 5), 0)  # 3 packets
        pni.issue(Load(2), 0)
        sent = []
        for cycle in range(6):
            pni.tick_outbound(cycle, lambda pe, msg: sent.append((cycle, msg.tag)) or True)
        assert len(sent) == 2
        assert sent[1][0] - sent[0][0] >= 3


class TestPNIReplies:
    def test_reply_completes_and_frees_cell(self):
        pni = make_pni()
        tag = pni.issue(Load(9), 0)
        message = pni.outbound.popleft()
        reply = message.make_reply(42)
        pni.deliver_reply(reply, cycle=10)
        record = pni.pop_reply()
        assert record.tag == tag
        assert record.value == 42
        assert record.round_trip == 10
        assert pni.can_issue(Load(9))  # cell free again

    def test_unknown_tag_is_protocol_violation(self):
        pni = make_pni()
        tag = pni.issue(Load(9), 0)
        message = pni.outbound.popleft()
        reply = message.make_reply(1)
        reply.tag = tag + 999
        with pytest.raises(AssertionError, match="unknown tag"):
            pni.deliver_reply(reply, 1)

    def test_mean_round_trip(self):
        pni = make_pni()
        pni.issue(Load(1), 0)
        pni.issue(Load(2), 0)
        for cycle in (4, 8):
            message = pni.outbound.popleft()
            pni.deliver_reply(message.make_reply(0), cycle)
        assert pni.mean_round_trip == 6.0


class TestMNI:
    def test_applies_fetch_add_atomically(self):
        module = MemoryModule(0, latency=2)
        module.poke(3, 10)
        mni = MNI(module)
        pni = make_pni()
        pni.issue(FetchAdd(3 * 8, 7), 0)  # addr 24 -> module 0? 24%8=0, offset 3
        message = pni.outbound.popleft()
        assert message.mm == 0 and message.offset == 3
        mni.offer_inbound(message, cycle=0)
        for cycle in range(0, 12):
            mni.tick(cycle)
        assert module.peek(3) == 17
        reply = mni.outbound[0]
        assert reply.value == 10  # the old value returns

    def test_store_reply_is_ack(self):
        module = MemoryModule(0, latency=1)
        mni = MNI(module)
        pni = make_pni()
        pni.issue(Store(0, 5), 0)
        message = pni.outbound.popleft()
        mni.offer_inbound(message, 0)
        for cycle in range(8):
            mni.tick(cycle)
        assert mni.outbound[0].value is None
        assert module.peek(0) == 5

    def test_assembly_delay_for_multipacket(self):
        """A 3-packet request arriving at cycle t starts service no
        earlier than t+2 (the tail must arrive)."""
        module = MemoryModule(0, latency=1)
        mni = MNI(module)
        pni = make_pni()
        pni.issue(Store(0, 5), 0)
        message = pni.outbound.popleft()
        mni.offer_inbound(message, cycle=0)
        mni.tick(0)
        mni.tick(1)
        assert not mni.outbound  # still assembling / serving
        mni.tick(2)
        mni.tick(3)
        assert mni.outbound  # completed at >= 3

    def test_serial_service(self):
        """Two requests to one module are served one at a time — the
        hot-module bottleneck hashing exists to avoid."""
        module = MemoryModule(0, latency=4)
        mni = MNI(module)
        pni = make_pni()
        pni.issue(Load(0), 0)
        pni.issue(Load(8), 0)  # same module 0, offset 1
        for message in list(pni.outbound):
            mni.offer_inbound(message, 0)
        completions = []
        for cycle in range(20):
            before = len(mni.outbound)
            mni.tick(cycle)
            if len(mni.outbound) > before:
                completions.append(cycle)
        assert len(completions) == 2
        assert completions[1] - completions[0] >= 4

    def test_inbound_capacity(self):
        module = MemoryModule(0, latency=1)
        mni = MNI(module, inbound_capacity_packets=3)
        pni = make_pni()
        pni.issue(Store(0, 1), 0)
        pni.issue(Store(8, 2), 0)
        first, second = pni.outbound
        assert mni.offer_inbound(first, 0)
        assert not mni.offer_inbound(second, 0)
