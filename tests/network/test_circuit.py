"""Tests for the circuit-switched, kill-on-conflict baseline network."""

import pytest

from repro.network.circuit import (
    CircuitSwitchedOmega,
    sustained_throughput,
)


class TestBasics:
    def test_single_request_completes_in_hold_time(self):
        network = CircuitSwitchedOmega(8, 2, seed=1)
        network.submit(0, 5)
        completed = []
        for _ in range(network.circuit_hold_time + 3):
            completed.extend(network.step())
        assert len(completed) == 1
        assert completed[0].attempts == 1
        assert completed[0].pe == 0 and completed[0].mm == 5

    def test_hold_time_formula(self):
        network = CircuitSwitchedOmega(8, 2, mm_latency=2)
        assert network.circuit_hold_time == 2 * 3 + 2

    def test_one_outstanding_per_pe(self):
        network = CircuitSwitchedOmega(8, 2)
        network.submit(0, 1)
        with pytest.raises(ValueError):
            network.submit(0, 2)

    def test_disjoint_paths_proceed_in_parallel(self):
        """A conflict-free permutation all completes in one hold time."""
        network = CircuitSwitchedOmega(8, 2, seed=2)
        for pe in range(8):
            network.submit(pe, pe)  # identity is conflict-free in Omega
        completed = []
        for _ in range(network.circuit_hold_time + 3):
            completed.extend(network.step())
        assert len(completed) == 8
        assert network.stats.kills == 0


class TestConflicts:
    def test_shared_port_kills_loser(self):
        """Two requests whose paths share a first-stage output port: one
        wins, the other is killed and retries after the circuit frees."""
        network = CircuitSwitchedOmega(8, 2, seed=3)
        # PEs 0 and 4 enter the same stage-0 switch; same destination
        # digit means the same output port.
        network.submit(0, 0)
        network.submit(4, 0)
        completed = []
        for _ in range(6 * network.circuit_hold_time):
            completed.extend(network.step())
        assert len(completed) == 2
        assert network.stats.kills >= 1
        finish_times = sorted(
            r.issued_cycle + 1 for r in completed
        )  # both issued at 0; serialization shows in completion gap
        latencies = sorted(r.completes_at for r in completed)
        assert latencies[1] >= latencies[0] + network.circuit_hold_time

    def test_hotspot_fully_serializes(self):
        """All N PEs to one MM: completions are at least a hold time
        apart — there is no combining to save the day here."""
        n = 8
        network = CircuitSwitchedOmega(n, 2, seed=4)
        for pe in range(n):
            network.submit(pe, 3)
        finished = []
        for _ in range(3 * n * network.circuit_hold_time):
            finished.extend(network.step())
            if len(finished) == n:
                break
        assert len(finished) == n
        times = sorted(r.completes_at for r in finished)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= network.circuit_hold_time for gap in gaps)


class TestBandwidthShape:
    def test_throughput_sublinear_in_n(self):
        """The paper's O(N / log N) claim: per-PE throughput *decreases*
        as the machine grows, unlike the pipelined combining network."""
        per_pe = {}
        for n in (8, 64):
            throughput = sustained_throughput(n, cycles=600, seed=5)
            per_pe[n] = throughput / n
        assert per_pe[64] < per_pe[8]

    def test_throughput_bounded_by_circuit_capacity(self):
        """A circuit holds log n ports for ~2 log n cycles; aggregate
        throughput cannot exceed n / (2 log n)-ish."""
        n = 16
        network = CircuitSwitchedOmega(n, 2)
        throughput = sustained_throughput(n, cycles=500, seed=6)
        assert throughput <= n / network.circuit_hold_time * 2.0

    def test_mean_attempts_grow_with_load(self):
        network = CircuitSwitchedOmega(16, 2, seed=7)
        import random

        rng = random.Random(1)
        for pe in range(16):
            network.submit(pe, rng.randrange(16))
        for _ in range(400):
            for request in network.step():
                network.submit(request.pe, rng.randrange(16))
        assert network.stats.mean_attempts > 1.0  # kills happen
        assert network.stats.completed > 0
