"""End-to-end tests of the assembled Omega network (section 3.1)."""

import pytest

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.network.message import Message
from repro.network.omega import NetworkConfig, OmegaNetwork


class Harness:
    """Endpoints for a bare network: records deliveries, echoes replies."""

    def __init__(self, network: OmegaNetwork):
        self.network = network
        self.at_mm: list[tuple[int, Message]] = []
        self.at_pe: list[tuple[int, Message]] = []
        network.connect(mm_sink=self._mm, pe_sink=self._pe)

    def _mm(self, mm: int, message: Message) -> bool:
        self.at_mm.append((mm, message))
        return True

    def _pe(self, pe: int, message: Message) -> bool:
        self.at_pe.append((pe, message))
        return True

    def step(self, cycles: int = 1):
        for _ in range(cycles):
            self.network.step_forward()
            self.network.step_return()
            self.network.advance_cycle()


def request(network, op, pe, mm, tag):
    return Message(
        op=op,
        mm=mm,
        offset=op.address,
        origin=pe,
        tag=tag,
        digits=network.topology.route_digits(mm),
    )


@pytest.fixture
def net8():
    return OmegaNetwork(NetworkConfig(n_ports=8, k=2))


class TestDelivery:
    def test_single_request_reaches_destination(self, net8):
        harness = Harness(net8)
        message = request(net8, Load(0), pe=3, mm=5, tag=1)
        assert net8.offer_request(3, message)
        harness.step(10)
        assert harness.at_mm == [(5, message)]

    def test_latency_is_stage_count_plus_one_when_empty(self, net8):
        harness = Harness(net8)
        message = request(net8, Load(0), pe=0, mm=7, tag=1)
        net8.offer_request(0, message)
        cycles = 0
        while not harness.at_mm:
            harness.step()
            cycles += 1
        assert cycles == net8.topology.stages  # one cycle per stage

    def test_all_pairs_delivered(self):
        network = OmegaNetwork(NetworkConfig(n_ports=8, k=2))
        harness = Harness(network)
        tag = 0
        for pe in range(8):
            for mm in range(8):
                tag += 1
                message = request(network, Load(pe), pe, mm, tag)
                injected = False
                for _ in range(200):
                    if network.offer_request(pe, message):
                        injected = True
                        break
                    harness.step()
                assert injected
        harness.step(200)
        assert len(harness.at_mm) == 64
        by_mm = {}
        for mm, message in harness.at_mm:
            assert message.mm == mm
            by_mm.setdefault(mm, 0)
            by_mm[mm] += 1
        assert all(count == 8 for count in by_mm.values())

    def test_reply_returns_to_origin(self, net8):
        harness = Harness(net8)
        message = request(net8, Load(0), pe=6, mm=2, tag=44)
        net8.offer_request(6, message)
        harness.step(10)
        (mm, delivered), = harness.at_mm
        reply = delivered.make_reply(123)
        assert net8.offer_reply(mm, reply)
        harness.step(10)
        assert harness.at_pe == [(6, reply)]

    def test_k4_network_round_trip(self):
        network = OmegaNetwork(NetworkConfig(n_ports=16, k=4))
        harness = Harness(network)
        message = request(network, Load(3), pe=13, mm=6, tag=9)
        network.offer_request(13, message)
        harness.step(10)
        (mm, delivered), = harness.at_mm
        assert mm == 6
        network.offer_reply(mm, delivered.make_reply(7))
        harness.step(10)
        assert harness.at_pe[0][0] == 13


class TestPipelining:
    def test_throughput_one_message_per_cycle_per_port(self, net8):
        """Pipelining (design factor 1): a PE can have a message in
        every stage; N messages to distinct MMs from one PE drain at
        one per cycle, not one per transit."""
        harness = Harness(net8)
        injected = 0
        cycle = 0
        while injected < 6:
            message = request(net8, Load(injected), pe=0, mm=injected, tag=injected)
            if net8.offer_request(0, message):
                injected += 1
            harness.step()
            cycle += 1
        harness.step(12)
        assert len(harness.at_mm) == 6
        # non-pipelined would need ~6 transits = 18+ cycles of injection
        assert cycle <= 8

    def test_combining_collapses_hotspot_tree(self):
        """All 8 PEs fetch-and-add one cell simultaneously: the switch
        tree combines them into a single memory access (the section
        3.1.2 key property)."""
        network = OmegaNetwork(NetworkConfig(n_ports=8, k=2, combining=True))
        harness = Harness(network)
        for pe in range(8):
            message = request(network, FetchAdd(0, 1), pe=pe, mm=0, tag=100 + pe)
            assert network.offer_request(pe, message)
        harness.step(12)
        assert len(harness.at_mm) == 1  # one combined request
        combined = harness.at_mm[0][1]
        assert combined.op.increment == 8
        # and the reply fans back out to all 8 PEs
        network.offer_reply(0, combined.make_reply(0))
        harness.step(12)
        assert sorted(pe for pe, _ in harness.at_pe) == list(range(8))
        values = sorted(m.value for _, m in harness.at_pe)
        assert values == list(range(8))  # distinct prefix sums

    def test_without_combining_all_requests_reach_memory(self):
        network = OmegaNetwork(NetworkConfig(n_ports=8, k=2, combining=False))
        harness = Harness(network)
        for pe in range(8):
            message = request(network, FetchAdd(0, 1), pe=pe, mm=0, tag=100 + pe)
            assert network.offer_request(pe, message)
        harness.step(40)
        assert len(harness.at_mm) == 8


class TestDrainAccounting:
    def test_is_drained(self, net8):
        harness = Harness(net8)
        assert net8.is_drained()
        message = request(net8, Load(0), pe=0, mm=0, tag=1)
        net8.offer_request(0, message)
        assert not net8.is_drained()
        harness.step(10)
        assert net8.is_drained()  # delivered out of the network

    def test_wait_records_pending_until_reply(self):
        network = OmegaNetwork(NetworkConfig(n_ports=8, k=2))
        harness = Harness(network)
        for pe in (0, 4):
            # PEs 0 and 4 share a first-stage switch input pair? inject
            # to the same MM so they combine somewhere en route
            message = request(network, FetchAdd(0, 1), pe=pe, mm=0, tag=pe + 1)
            network.offer_request(pe, message)
        harness.step(12)
        if network.total_combines():
            assert network.pending_wait_records() > 0
            (mm, delivered) = harness.at_mm[0]
            network.offer_reply(mm, delivered.make_reply(0))
            harness.step(12)
            assert network.pending_wait_records() == 0

    def test_endpoints_required(self):
        network = OmegaNetwork(NetworkConfig(n_ports=8, k=2))
        with pytest.raises(RuntimeError, match="not connected"):
            network.step_forward()
