"""Tests for network messages and the amalgam addressing (section 3.1.1)."""

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.network.message import (
    Message,
    PACKETS_WITHOUT_DATA,
    PACKETS_WITH_DATA,
)
from repro.network.topology import OmegaTopology


def make_message(op, mm=5, origin=3, tag=1, stages=3, k=2):
    topo = OmegaTopology(k**stages, k)
    return Message(
        op=op,
        mm=mm,
        offset=0,
        origin=origin,
        tag=tag,
        digits=topo.route_digits(mm),
    )


class TestPackets:
    def test_load_request_is_one_packet(self):
        assert make_message(Load(0)).packets == PACKETS_WITHOUT_DATA

    def test_store_request_is_three_packets(self):
        assert make_message(Store(0, 5)).packets == PACKETS_WITH_DATA

    def test_fetch_add_request_is_three_packets(self):
        assert make_message(FetchAdd(0, 1)).packets == PACKETS_WITH_DATA

    def test_value_reply_is_three_packets(self):
        reply = make_message(Load(0)).make_reply(42)
        assert reply.packets == PACKETS_WITH_DATA

    def test_ack_reply_is_one_packet(self):
        reply = make_message(Store(0, 5)).make_reply(None)
        assert reply.packets == PACKETS_WITHOUT_DATA


class TestAmalgamAddressing:
    def test_digit_swap_reconstructs_origin(self):
        """Simulate the forward trip: at stage j route on digits[j] and
        replace it with the arrival port.  At the MM, the digit vector
        must spell the origin."""
        topo = OmegaTopology(8, k=2)
        origin, mm = 0b011, 0b101
        message = Message(
            op=Load(0), mm=mm, offset=0, origin=origin, tag=9,
            digits=topo.route_digits(mm),
        )
        for hop in topo.forward_path(origin, mm):
            assert message.route_digit(hop.stage) == hop.out_port
            message.record_arrival_port(hop.stage, hop.in_port)
        # After the trip, the digits are the return address.
        from repro.network.topology import from_digits

        # The return path consumes digits in reverse stage order; walking
        # it must land on the origin.
        line = mm
        for hop in topo.return_path(origin, mm):
            assert message.route_digit(hop.stage) == hop.out_port
            line = topo.unshuffle(hop.switch * topo.k + hop.out_port)
        assert line == origin

    def test_make_reply_preserves_identity(self):
        message = make_message(FetchAdd(7, 3), tag=55)
        message.record_arrival_port(0, 1)
        reply = message.make_reply(123)
        assert reply.is_reply
        assert reply.tag == 55
        assert reply.value == 123
        assert reply.digits == message.digits
        assert reply.digits is not message.digits  # independent copy

    def test_combining_key_is_cell_identity(self):
        a = make_message(Load(4), mm=2)
        b = make_message(Store(4, 9), mm=2)
        assert a.combining_key() == b.combining_key()
        c = make_message(Load(4), mm=3)
        assert a.combining_key() != c.combining_key()

    def test_uids_are_unique(self):
        a = make_message(Load(0))
        b = make_message(Load(0))
        assert a.uid != b.uid
