"""Unit tests for :class:`repro.serve.SweepService` (no HTTP).

The differential contract — service payloads byte-identical to
:class:`~repro.exp.SweepRunner` — plus cache/progress/refresh
behaviors, driven directly on an event loop.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exp import ExperimentSpec, NullCache, ResultCache, SweepRunner
from repro.serve import SweepService


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


SPEC = ExperimentSpec(
    experiment="debug.echo",
    base={"tag": "service"},
    axes=(("n", (1, 2, 3, 4)),),
    seed=6,
)


def execute(service, spec, **kwargs):
    try:
        return asyncio.run(service.execute(spec, **kwargs))
    finally:
        service.shutdown()


class TestParity:
    def test_payload_matches_runner_bit_for_bit(self, tmp_path):
        service = SweepService(workers=2, cache=ResultCache(tmp_path / "a"))
        served = execute(service, SPEC)
        direct = SweepRunner(workers=1, cache=NullCache()).run(SPEC).to_dict()
        assert canonical(served["results"]) == canonical(direct["results"])
        assert served["spec"] == direct["spec"]
        assert served["spec_hash"] == direct["spec_hash"]
        assert served["computed_points"] == 4
        assert served["cached_points"] == 0

    def test_results_ordered_by_point_index(self, tmp_path):
        service = SweepService(workers=2, cache=ResultCache(tmp_path / "b"))
        served = execute(service, SPEC)
        values = [r["echo"]["n"] for r in served["results"]]
        assert values == [1, 2, 3, 4]


class TestCache:
    def test_second_execution_is_pure_cache_read(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        service = SweepService(workers=2, cache=cache)
        try:
            cold = asyncio.run(service.execute(SPEC))
            warm = asyncio.run(service.execute(SPEC))
        finally:
            service.shutdown()
        assert cold["computed_points"] == 4 and cold["cached_points"] == 0
        assert warm["computed_points"] == 0 and warm["cached_points"] == 4
        assert canonical(cold["results"]) == canonical(warm["results"])

    def test_cache_shared_with_direct_runner(self, tmp_path):
        """The service reads points a SweepRunner wrote, and vice versa
        — one content store across every execution path."""
        cache_dir = tmp_path / "d"
        SweepRunner(workers=1, cache=ResultCache(cache_dir)).run(SPEC)
        service = SweepService(workers=2, cache=ResultCache(cache_dir))
        served = execute(service, SPEC)
        assert served["computed_points"] == 0
        assert served["cached_points"] == 4

    def test_refresh_recomputes_but_rewrites(self, tmp_path):
        cache = ResultCache(tmp_path / "e")
        service = SweepService(workers=2, cache=cache)
        try:
            asyncio.run(service.execute(SPEC))
            refreshed = asyncio.run(
                SweepService(workers=2, cache=cache, refresh=True)
                .execute(SPEC)
            )
        finally:
            service.shutdown()
        assert refreshed["computed_points"] == 4


class TestProgress:
    def test_progress_event_per_point_with_running_done_count(self, tmp_path):
        service = SweepService(workers=2, cache=ResultCache(tmp_path / "f"))
        events: list = []
        served = execute(service, SPEC, on_progress=events.append)
        assert len(events) == 4
        assert {e["index"] for e in events} == {0, 1, 2, 3}
        assert [e["done"] for e in events] == [1, 2, 3, 4]
        assert all(e["total"] == 4 and not e["cached"] for e in events)
        assert served["computed_points"] == 4

    def test_cached_points_reported_as_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "g")
        service = SweepService(workers=2, cache=cache)
        try:
            asyncio.run(service.execute(SPEC))
            events: list = []
            asyncio.run(service.execute(SPEC, on_progress=events.append))
        finally:
            service.shutdown()
        assert len(events) == 4
        assert all(e["cached"] for e in events)


class TestValidation:
    def test_rejects_silly_worker_counts(self):
        with pytest.raises(ValueError):
            SweepService(workers=0)

    def test_pool_is_lazy(self, tmp_path):
        service = SweepService(workers=2, cache=ResultCache(tmp_path / "h"))
        # no pool until first compute (or an explicit warm())
        assert service.backend._executor is None
        service.shutdown()
