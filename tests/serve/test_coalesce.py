"""Deterministic coalescing semantics of the Pending-Interest Table.

Every test drives a fresh event loop via ``asyncio.run`` with
computations gated on explicit events, so interleavings are exact —
no sleeps, no real clock.  Timing assertions use the injected
:class:`~repro.serve.ManualClock`.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ManualClock, PendingTable


class Gate:
    """A compute function whose completion the test controls.

    ``calls`` counts invocations — the property under test is that any
    interleaving of identical keys produces exactly one.
    """

    def __init__(self, payload="payload"):
        self.calls = 0
        self.release = asyncio.Event()
        self.started = asyncio.Event()
        self.payload = payload

    async def __call__(self, publish):
        self.calls += 1
        self.started.set()
        await self.release.wait()
        return self.payload

    def open(self):
        self.release.set()


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_one_waiter_leader_role(self):
        async def scenario():
            table = PendingTable()
            gate = Gate({"x": 1})
            join = asyncio.ensure_future(table.join("k", gate))
            await gate.started.wait()
            assert table.in_flight == 1 and table.is_pending("k")
            gate.open()
            outcome = await join
            assert outcome.role == "leader"
            assert outcome.payload == {"x": 1}
            assert table.in_flight == 0
            assert table.computations == 1 and table.coalesced == 0

        run(scenario())

    def test_concurrent_identical_keys_compute_once(self):
        async def scenario():
            table = PendingTable()
            gate = Gate(["same", "object"])
            joins = [
                asyncio.ensure_future(table.join("k", gate))
                for _ in range(16)
            ]
            await gate.started.wait()
            gate.open()
            outcomes = await asyncio.gather(*joins)
            assert gate.calls == 1
            roles = sorted(o.role for o in outcomes)
            assert roles == ["follower"] * 15 + ["leader"]
            # every joiner gets the *same object*, hence bit-identical
            assert all(o.payload is outcomes[0].payload for o in outcomes)
            assert table.computations == 1 and table.coalesced == 15

        run(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            table = PendingTable()
            gates = {k: Gate(k) for k in ("a", "b", "c")}
            joins = {
                k: asyncio.ensure_future(table.join(k, gates[k]))
                for k in gates
            }
            for gate in gates.values():
                await gate.started.wait()
            assert table.in_flight == 3
            for gate in gates.values():
                gate.open()
            for key, join in joins.items():
                outcome = await join
                assert outcome.role == "leader"
                assert outcome.payload == key
            assert table.computations == 3 and table.coalesced == 0

        run(scenario())

    def test_entry_removed_before_resolution_next_join_recomputes(self):
        async def scenario():
            table = PendingTable()
            first = Gate("one")
            join = asyncio.ensure_future(table.join("k", first))
            await first.started.wait()
            first.open()
            assert (await join).payload == "one"
            assert not table.is_pending("k")
            second = Gate("two")
            second.open()
            outcome = await table.join("k", second)
            assert outcome.role == "leader" and outcome.payload == "two"
            assert table.computations == 2

        run(scenario())


class TestErrorFanOut:
    def test_exception_reaches_every_waiter_and_table_empties(self):
        async def scenario():
            table = PendingTable()
            started = asyncio.Event()

            async def explode(publish):
                started.set()
                await asyncio.sleep(0)
                raise ValueError("boom")

            joins = [
                asyncio.ensure_future(table.join("k", explode))
                for _ in range(5)
            ]
            results = await asyncio.gather(*joins, return_exceptions=True)
            assert all(isinstance(r, ValueError) for r in results)
            assert {str(r) for r in results} == {"boom"}
            assert table.in_flight == 0

        run(scenario())

    def test_failed_key_can_be_retried_fresh(self):
        async def scenario():
            table = PendingTable()

            async def explode(publish):
                raise RuntimeError("first attempt dies")

            with pytest.raises(RuntimeError):
                await table.join("k", explode)
            retry = Gate("recovered")
            retry.open()
            outcome = await table.join("k", retry)
            assert outcome.payload == "recovered"

        run(scenario())


class TestCancellation:
    """Client-disconnect semantics: a cancelled waiter never cancels
    the computation — it is owned by the table."""

    def test_cancelled_follower_leaves_computation_running(self):
        async def scenario():
            table = PendingTable()
            gate = Gate("survives")
            leader = asyncio.ensure_future(table.join("k", gate))
            await gate.started.wait()
            follower = asyncio.ensure_future(table.join("k", gate))
            await asyncio.sleep(0)
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            gate.open()
            outcome = await leader
            assert outcome.payload == "survives"
            assert gate.calls == 1

        run(scenario())

    def test_cancelled_leader_waiter_still_computes_for_follower(self):
        async def scenario():
            table = PendingTable()
            gate = Gate("for the follower")
            leader = asyncio.ensure_future(table.join("k", gate))
            await gate.started.wait()
            follower = asyncio.ensure_future(table.join("k", gate))
            await asyncio.sleep(0)
            leader.cancel()  # the leader's *wait* dies, not the compute
            with pytest.raises(asyncio.CancelledError):
                await leader
            gate.open()
            outcome = await follower
            assert outcome.payload == "for the follower"
            assert gate.calls == 1

        run(scenario())

    def test_shutdown_fails_pending_waiters(self):
        async def scenario():
            table = PendingTable()
            gate = Gate("never delivered")
            join = asyncio.ensure_future(table.join("k", gate))
            await gate.started.wait()
            await table.shutdown()
            with pytest.raises(RuntimeError, match="cancelled"):
                await join
            assert table.in_flight == 0

        run(scenario())


class TestFakeClock:
    def test_service_time_measured_on_injected_clock(self):
        async def scenario():
            clock = ManualClock()
            table = PendingTable(clock=clock)
            gate = Gate("timed")
            leader = asyncio.ensure_future(table.join("k", gate))
            await gate.started.wait()
            clock.advance(3.0)
            follower = asyncio.ensure_future(table.join("k", gate))
            await asyncio.sleep(0)
            clock.advance(2.0)
            gate.open()
            leader_out, follower_out = await asyncio.gather(leader, follower)
            # leader waited 3 + 2 on the fake clock, follower only 2
            assert leader_out.service_time == pytest.approx(5.0)
            assert follower_out.service_time == pytest.approx(2.0)

        run(scenario())

    def test_manual_clock_rejects_backward_time(self):
        clock = ManualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        assert clock() == 10.0


class TestProgressEvents:
    def test_events_fan_out_live_and_replay_to_late_subscribers(self):
        async def scenario():
            table = PendingTable()
            release = asyncio.Event()
            published = asyncio.Event()

            async def compute(publish):
                publish({"n": 1})
                publish({"n": 2})
                published.set()
                await release.wait()
                publish({"n": 3})
                return "done"

            early: asyncio.Queue = asyncio.Queue()
            leader = asyncio.ensure_future(
                table.join("k", compute, events=early)
            )
            await published.wait()
            # late subscriber: replay of {1,2} then live {3}
            late: asyncio.Queue = asyncio.Queue()
            follower = asyncio.ensure_future(
                table.join("k", compute, events=late)
            )
            await asyncio.sleep(0)
            release.set()
            await asyncio.gather(leader, follower)

            async def drain(queue):
                items = []
                while True:
                    item = await queue.get()
                    if item is None:
                        return items
                    items.append(item)

            assert await drain(early) == [{"n": 1}, {"n": 2}, {"n": 3}]
            assert await drain(late) == [{"n": 1}, {"n": 2}, {"n": 3}]

        run(scenario())


class TestInterleavingProperties:
    """Hypothesis: ANY interleaving of identical-key joins yields
    exactly one computation per pending generation, and every joiner of
    a generation receives the identical payload object."""

    @given(
        n_before=st.integers(min_value=1, max_value=8),
        n_after=st.integers(min_value=0, max_value=8),
        yields=st.lists(st.integers(min_value=0, max_value=3),
                        min_size=0, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_one_computation_per_generation(self, n_before, n_after, yields):
        async def scenario():
            table = PendingTable()
            gate = Gate(("gen1",))
            joins = []
            for i in range(n_before):
                joins.append(asyncio.ensure_future(table.join("k", gate)))
                # arbitrary scheduling noise between arrivals
                for _ in range(yields[i % len(yields)] if yields else 0):
                    await asyncio.sleep(0)
            await gate.started.wait()
            gate.open()
            first_gen = await asyncio.gather(*joins)
            assert gate.calls == 1
            assert len({id(o.payload) for o in first_gen}) == 1
            assert [o.role for o in first_gen].count("leader") == 1

            # a second wave after resolution is a fresh generation
            gate2 = Gate(("gen2",))
            gate2.open()
            second_gen = await asyncio.gather(*[
                table.join("k", gate2) for _ in range(n_after)
            ])
            assert gate2.calls == (1 if n_after else 0)
            assert table.computations == 1 + (1 if n_after else 0)
            for outcome in second_gen:
                assert outcome.payload == ("gen2",)

        run(scenario())
