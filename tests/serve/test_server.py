"""End-to-end serving tests over real sockets.

The acceptance-critical property lives here: N concurrent identical
``ExperimentSpec`` submissions trigger exactly one underlying
computation, and every response is bit-identical to a direct
:class:`~repro.exp.SweepRunner` run of the same spec.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.exp import ExperimentSpec, NullCache, SweepRunner
from repro.serve import ServeError


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


ECHO_SPEC = {
    "experiment": "debug.echo",
    "base": {"workload": "ticket"},
    "axes": [{"name": "n", "values": [1, 2, 3]}],
    "seed": 3,
}

DEMO_SPEC = {
    "experiment": "machine.demo",
    "base": {"pes": 4, "tickets": 2},
    "seed": 0,
}


class TestEndpoints:
    def test_healthz(self, serve_app):
        payload = serve_app.client().health()
        assert payload["ok"] is True
        assert payload["uptime"] >= 0

    def test_experiments_lists_registry(self, serve_app):
        names = serve_app.client().experiments()
        assert "debug.echo" in names
        assert "machine.demo" in names
        assert "fig7.design_curve" in names

    def test_unknown_route_404(self, serve_app):
        with pytest.raises(ServeError) as err:
            serve_app.client()._checked("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, serve_app):
        with pytest.raises(ServeError) as err:
            serve_app.client()._checked("GET", "/run")
        assert err.value.status == 405

    def test_stats_shape(self, serve_app):
        stats = serve_app.client().stats()
        assert stats["requests"] == 0
        assert stats["by_class"] == {
            "computed": 0, "coalesced": 0, "cache": 0, "error": 0,
        }
        assert stats["pool"]["workers"] == 2
        assert "latency_us" in stats and "pending" in stats


class TestRunEnvelope:
    def test_run_computes_and_echoes_spec(self, serve_app):
        env = serve_app.client().run(ECHO_SPEC)
        assert env["command"] == "serve.run"
        assert env["served_by"] == "computed"
        assert env["coalesced"] is False
        assert env["spec"]["experiment"] == "debug.echo"
        spec = ExperimentSpec.from_dict(ECHO_SPEC)
        assert env["spec_hash"] == spec.spec_hash()
        assert env["sweep"]["computed_points"] == 3

    def test_spec_wrapper_key_accepted(self, serve_app):
        env = serve_app.client().run({"spec": ECHO_SPEC})
        assert env["served_by"] == "computed"

    def test_results_bit_identical_to_direct_runner(self, serve_app):
        env = serve_app.client().run(DEMO_SPEC)
        direct = SweepRunner(workers=1, cache=NullCache()).run(
            ExperimentSpec.from_dict(DEMO_SPEC)
        ).to_dict()
        assert canonical(env["results"]) == canonical(direct["results"])

    def test_repeat_is_served_from_content_store(self, serve_app):
        client = serve_app.client()
        first = client.run(ECHO_SPEC)
        second = client.run(ECHO_SPEC)
        assert first["served_by"] == "computed"
        assert second["served_by"] == "cache"
        assert second["sweep"]["cached_points"] == 3
        assert second["sweep"]["computed_points"] == 0
        assert canonical(first["results"]) == canonical(second["results"])
        assert serve_app.table.computations <= 2  # second never computed

    def test_bad_spec_rejected_400(self, serve_app):
        with pytest.raises(ServeError) as err:
            serve_app.client().run({"base": {"x": 1}})  # no experiment
        assert err.value.status == 400
        assert "invalid spec" in str(err.value)

    def test_unknown_experiment_rejected_400(self, serve_app):
        with pytest.raises(ServeError) as err:
            serve_app.client().run({"experiment": "no.such.thing", "seed": 0})
        assert err.value.status == 400
        assert "unknown experiment" in str(err.value)

    def test_error_spans_recorded(self, serve_app):
        with pytest.raises(ServeError):
            serve_app.client().run({"experiment": "no.such.thing", "seed": 0})
        stats = serve_app.client().stats()
        assert stats["by_class"]["error"] == 1


class TestCoalescing:
    """The acceptance criterion, asserted deterministically."""

    def _fire_concurrent(self, serve_app, spec, n):
        results: list = [None] * n
        errors: list = []

        def hit(i):
            try:
                results[i] = serve_app.client().run(spec)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        return results

    def test_concurrent_identical_specs_compute_exactly_once(self, serve_app):
        spec = {
            "experiment": "debug.sleep",
            "base": {"seconds": 0.5, "value": 7},
            "seed": 9,
        }
        results = self._fire_concurrent(serve_app, spec, 12)
        # exactly one computation: debug.sleep holds a worker for 0.5 s,
        # far longer than 12 local submissions take to arrive
        assert serve_app.table.computations == 1
        assert serve_app.table.coalesced == 11
        served = sorted(r["served_by"] for r in results)
        assert served == ["coalesced"] * 11 + ["computed"]
        # bit-identical payloads for every response
        blobs = {canonical(r["results"]) for r in results}
        assert len(blobs) == 1
        stats = serve_app.client().stats()
        assert stats["by_class"]["computed"] == 1
        assert stats["by_class"]["coalesced"] == 11
        assert stats["coalescing_ratio"] == pytest.approx(11 / 12)

    def test_coalesced_payload_matches_direct_runner(self, serve_app):
        spec = {
            "experiment": "debug.sleep",
            "base": {"seconds": 0.4, "value": [1, 2]},
            "seed": 2,
        }
        results = self._fire_concurrent(serve_app, spec, 6)
        direct = SweepRunner(workers=1, cache=NullCache()).run(
            ExperimentSpec.from_dict(spec)
        ).to_dict()
        for env in results:
            assert canonical(env["results"]) == canonical(direct["results"])

    def test_distinct_specs_compute_independently(self, serve_app):
        specs = [
            {"experiment": "debug.echo", "base": {"i": i}, "seed": 0}
            for i in range(5)
        ]
        results: list = [None] * 5

        def hit(i):
            results[i] = serve_app.client().run(specs[i])

        threads = [
            threading.Thread(target=hit, args=(i,)) for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert serve_app.table.computations == 5
        assert serve_app.table.coalesced == 0
        for i, env in enumerate(results):
            assert env["results"][0]["echo"]["i"] == i


class TestStreaming:
    def test_stream_emits_progress_then_result(self, serve_app):
        events = list(serve_app.client().run_stream(ECHO_SPEC))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        points = [e for e in events if e["event"] == "point"]
        assert len(points) == 3
        assert {p["index"] for p in points} == {0, 1, 2}
        assert points[-1]["done"] == 3 and points[-1]["total"] == 3
        final = events[-1]
        assert final["served_by"] == "computed"
        direct = SweepRunner(workers=1, cache=NullCache()).run(
            ExperimentSpec.from_dict(ECHO_SPEC)
        ).to_dict()
        assert canonical(final["results"]) == canonical(direct["results"])

    def test_stream_error_event_on_unknown_experiment(self, serve_app):
        with pytest.raises(ServeError) as err:
            list(serve_app.client().run_stream(
                {"experiment": "no.such", "seed": 0}
            ))
        assert err.value.status == 400

    def test_cached_rerun_streams_cached_points(self, serve_app):
        client = serve_app.client()
        client.run(ECHO_SPEC)
        events = list(client.run_stream(ECHO_SPEC))
        final = events[-1]
        assert final["served_by"] == "cache"
        points = [e for e in events if e["event"] == "point"]
        assert all(p["cached"] for p in points)
