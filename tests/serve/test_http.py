"""Unit tests for the minimal HTTP/1.1 layer.

The parser is fed through a real :class:`asyncio.StreamReader` (no
sockets), so byte-level edge cases — truncation, oversized limits,
malformed framing — are exact.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY,
    ChunkedNdjsonWriter,
    HttpError,
    json_response,
    parse_chunked_body,
    read_request,
)


def parse(raw: bytes):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(scenario())


class _SinkWriter:
    """Just enough of StreamWriter for response-side unit tests."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data += chunk

    async def drain(self) -> None:
        pass


class TestRequestParsing:
    def test_get_with_query(self):
        req = parse(b"GET /run?stream=1&x=a%20b HTTP/1.1\r\nHost: h\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/run"
        assert req.query == {"stream": "1", "x": "a b"}
        assert req.headers["host"] == "h"
        assert req.body == b""

    def test_post_with_content_length_body(self):
        body = b'{"a": 1}'
        req = parse(
            b"POST /run HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
            % (len(body), body)
        )
        assert req.method == "POST"
        assert req.body == body
        assert req.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_lowercased_and_trimmed(self):
        req = parse(b"GET / HTTP/1.1\r\n  X-Thing :  v  \r\n\r\n")
        assert req.headers["x-thing"] == "v"

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        req = parse(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_bare_lf_line_endings_accepted(self):
        req = parse(b"GET /x HTTP/1.1\nhost: h\n\n")
        assert req.path == "/x"


class TestRequestRejection:
    @pytest.mark.parametrize("raw,fragment", [
        (b"GARBAGE\r\n\r\n", "malformed request line"),
        (b"GET /x HTTP/2\r\n\r\n", "unsupported protocol"),
        (b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n", "malformed header"),
        (b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
         "malformed Content-Length"),
        (b"POST /x HTTP/1.1\r\ncontent-length: -4\r\n\r\n",
         "malformed Content-Length"),
        (b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
         "chunked request"),
        (b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort",
         "truncated body"),
        (b"GET /x HTT", "truncated request line"),
    ])
    def test_malformed_requests_raise_400(self, raw, fragment):
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 400
        assert fragment in err.value.message

    def test_oversized_body_rejected_413(self):
        head = b"POST /x HTTP/1.1\r\ncontent-length: %d\r\n\r\n" % (
            MAX_BODY + 1
        )
        with pytest.raises(HttpError) as err:
            parse(head)
        assert err.value.status == 413

    def test_too_many_headers_rejected(self):
        headers = b"".join(b"h%d: v\r\n" % i for i in range(101))
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert err.value.status == 400
        assert "too many headers" in err.value.message

    def test_json_body_required_and_validated(self):
        req = parse(b"POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\nnot")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400
        with pytest.raises(HttpError):
            parse(b"POST /x HTTP/1.1\r\n\r\n").json()  # empty body


class TestResponses:
    def test_json_response_framing(self):
        sink = _SinkWriter()
        json_response(sink, 200, {"b": 2, "a": 1})
        raw = bytes(sink.data)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"content-type: application/json" in head
        # canonical: sorted keys
        assert body == b'{"a": 1, "b": 2}\n'
        assert b"content-length: %d" % len(body) in head

    def test_json_response_close_header(self):
        sink = _SinkWriter()
        json_response(sink, 400, {"error": "x"}, close=True)
        assert b"connection: close" in bytes(sink.data)
        assert b"400 Bad Request" in bytes(sink.data)

    def test_chunked_ndjson_round_trip(self):
        async def scenario():
            sink = _SinkWriter()
            stream = ChunkedNdjsonWriter(sink)
            stream.send({"event": "a"})
            stream.send({"event": "b", "n": 2})
            await stream.finish()
            return bytes(sink.data)

        raw = asyncio.run(scenario())
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b"transfer-encoding: chunked" in head
        body = parse_chunked_body(payload)
        events = [json.loads(line) for line in body.splitlines() if line]
        assert events == [{"event": "a"}, {"event": "b", "n": 2}]

    def test_empty_stream_still_terminates(self):
        async def scenario():
            sink = _SinkWriter()
            await ChunkedNdjsonWriter(sink).finish()
            return bytes(sink.data)

        raw = asyncio.run(scenario())
        assert raw.endswith(b"0\r\n\r\n")

    def test_parse_chunked_body_rejects_truncation(self):
        with pytest.raises(ValueError):
            parse_chunked_body(b"5")  # no CRLF after size
