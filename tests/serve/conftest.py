"""Fixtures for the serving-tier suite: a real server on a real port.

The server runs in a background thread with its own event loop (the
tests themselves stay synchronous, driving it over real sockets — the
same path production clients take).  Every fixture instance gets a
fresh ephemeral port and a per-test cache directory, so tests are
hermetic and parallel-safe.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.exp import ResultCache
from repro.serve import ServeApp, ServeClient, SweepService


class ServeHandle:
    """The running server plus ready-made clients for it."""

    def __init__(self, app: ServeApp, loop: asyncio.AbstractEventLoop):
        self.app = app
        self.loop = loop
        self.host = "127.0.0.1"
        self.port = app.port

    def client(self, *, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.host, self.port, timeout=timeout)

    @property
    def stats(self):
        return self.app.stats

    @property
    def table(self):
        return self.app.table


@pytest.fixture
def serve_app(tmp_path):
    """Boot a 2-worker server on an ephemeral port; tear it down after."""
    ready = threading.Event()
    holder: dict = {}

    def boot() -> None:
        async def main() -> None:
            service = SweepService(
                workers=2, cache=ResultCache(tmp_path / "serve-cache")
            )
            app = ServeApp(service)
            await app.start("127.0.0.1", 0)
            holder["app"] = app
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            ready.set()
            serve = asyncio.ensure_future(app.serve_forever())
            await holder["stop"].wait()
            serve.cancel()
            await app.stop()

        asyncio.run(main())

    thread = threading.Thread(target=boot, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to boot"
    handle = ServeHandle(holder["app"], holder["loop"])
    yield handle
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(timeout=10)
