"""Fault injection against the running server.

Three failure families the serving tier must contain:

* a **worker crash** mid-computation (the pool process dies) fails the
  request cleanly, fans the failure out to every coalesced waiter,
  rebuilds the pool, and leaves the server healthy;
* a **client disconnect** while its request is pending abandons only
  that client's wait — the computation is table-owned, completes, and
  lands in the content store for the next requester;
* **concurrent writers of overlapping specs** race on shared cache
  keys without torn reads (point-level last-writer-wins).
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.exp import ExperimentSpec, NullCache, SweepRunner
from repro.serve import ServeError

CRASH_SPEC = {"experiment": "debug.crash", "base": {"code": 5}, "seed": 0}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestWorkerCrash:
    def test_crash_returns_500_and_rebuilds_pool(self, serve_app):
        client = serve_app.client()
        with pytest.raises(ServeError) as err:
            client.run(CRASH_SPEC)
        assert err.value.status == 500
        assert "crashed" in str(err.value)
        assert serve_app.app.service.pool_rebuilds == 1
        # the server survives and the fresh pool works
        env = client.run({"experiment": "debug.echo",
                          "base": {"alive": True}, "seed": 0})
        assert env["served_by"] == "computed"
        stats = client.stats()
        assert stats["by_class"]["error"] == 1
        assert stats["pool"]["rebuilds"] == 1

    def test_crash_fans_out_to_coalesced_waiters(self, serve_app):
        # several identical crash submissions: one computation, every
        # waiter sees the same 500
        statuses: list = []
        lock = threading.Lock()

        def hit():
            try:
                serve_app.client().run(CRASH_SPEC)
                status = 200
            except ServeError as exc:
                status = exc.status
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=hit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert statuses == [500] * 6
        # crashing leaves nothing pending; a retry starts fresh
        assert serve_app.table.in_flight == 0

    def test_crashed_key_is_not_poisoned(self, serve_app):
        client = serve_app.client()
        with pytest.raises(ServeError):
            client.run(CRASH_SPEC)
        with pytest.raises(ServeError):
            client.run(CRASH_SPEC)  # crashes again — still a clean 500
        assert serve_app.app.service.pool_rebuilds == 2


class TestClientDisconnect:
    SPEC = {
        "experiment": "debug.sleep",
        "base": {"seconds": 0.6, "value": 11},
        "seed": 4,
    }

    def _post_and_hang_up(self, serve_app, spec) -> None:
        body = json.dumps(spec).encode()
        sock = socket.create_connection(
            (serve_app.host, serve_app.port), timeout=10
        )
        sock.sendall(
            b"POST /run HTTP/1.1\r\nhost: t\r\n"
            b"content-length: %d\r\n\r\n%s" % (len(body), body)
        )
        time.sleep(0.15)  # long enough for the server to start the sweep
        sock.close()

    def test_disconnect_while_pending_completes_computation(self, serve_app):
        self._post_and_hang_up(serve_app, self.SPEC)
        deadline = time.monotonic() + 10
        while serve_app.table.in_flight and time.monotonic() < deadline:
            time.sleep(0.05)
        assert serve_app.table.in_flight == 0
        # the abandoned computation landed in the content store:
        env = serve_app.client().run(self.SPEC)
        assert env["served_by"] == "cache"
        assert serve_app.table.computations == 2  # sleep + cache replay
        direct = SweepRunner(workers=1, cache=NullCache()).run(
            ExperimentSpec.from_dict(self.SPEC)
        ).to_dict()
        assert canonical(env["results"]) == canonical(direct["results"])

    def test_disconnected_follower_leaves_leader_unharmed(self, serve_app):
        spec = {
            "experiment": "debug.sleep",
            "base": {"seconds": 0.6, "value": 12},
            "seed": 5,
        }
        leader_result: dict = {}

        def leader():
            leader_result["env"] = serve_app.client().run(spec)

        thread = threading.Thread(target=leader)
        thread.start()
        deadline = time.monotonic() + 5
        while not serve_app.table.in_flight and time.monotonic() < deadline:
            time.sleep(0.01)
        self._post_and_hang_up(serve_app, spec)  # follower joins, dies
        thread.join(timeout=60)
        env = leader_result["env"]
        assert env["served_by"] == "computed"
        assert env["results"][0]["value"] == 12
        assert serve_app.table.computations == 1

    def test_disconnect_mid_stream_keeps_server_responsive(self, serve_app):
        spec = {
            "experiment": "debug.sleep",
            "base": {"seconds": 0.5, "value": 13},
            "seed": 6,
        }
        body = json.dumps(spec).encode()
        sock = socket.create_connection(
            (serve_app.host, serve_app.port), timeout=10
        )
        sock.sendall(
            b"POST /run?stream=1 HTTP/1.1\r\nhost: t\r\n"
            b"content-length: %d\r\n\r\n%s" % (len(body), body)
        )
        sock.recv(256)  # read part of the accepted event, then vanish
        sock.close()
        # server still answers; the stream's sweep completes off-line
        assert serve_app.client().health()["ok"]
        deadline = time.monotonic() + 10
        while serve_app.table.in_flight and time.monotonic() < deadline:
            time.sleep(0.05)
        env = serve_app.client().run(spec)
        assert env["served_by"] == "cache"


class TestOverlappingSpecsCacheRace:
    def test_concurrent_overlapping_sweeps_share_points_cleanly(
        self, serve_app
    ):
        """Two distinct specs whose grids overlap race on the shared
        point keys; both must come back complete and correct."""
        spec_a = {
            "experiment": "debug.echo",
            "axes": [{"name": "n", "values": [1, 2, 3, 4]}],
            "seed": 0,
        }
        spec_b = {
            "experiment": "debug.echo",
            "axes": [{"name": "n", "values": [3, 4, 5, 6]}],
            "seed": 0,
        }
        results: dict = {}

        def hit(name, spec):
            results[name] = serve_app.client().run(spec)

        threads = [
            threading.Thread(target=hit, args=("a", spec_a)),
            threading.Thread(target=hit, args=("b", spec_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for name, spec in (("a", spec_a), ("b", spec_b)):
            direct = SweepRunner(workers=1, cache=NullCache()).run(
                ExperimentSpec.from_dict(spec)
            ).to_dict()
            assert canonical(results[name]["results"]) == canonical(
                direct["results"]
            ), name
        # distinct spec hashes: no coalescing between the two
        assert serve_app.table.computations == 2
