"""The ``GET /metrics`` exposition plane and the serve fleet log."""

from __future__ import annotations

from helpers import parse_prometheus
from repro.serve import ServeError

ECHO_SPEC = {
    "experiment": "debug.echo",
    "base": {"probe": "metrics"},
    "axes": [{"name": "n", "values": [1, 2]}],
    "seed": 1,
}


class TestMetricsEndpoint:
    def test_scrape_is_valid_text_format(self, serve_app):
        text = serve_app.client().metrics()
        types, samples = parse_prometheus(text)  # raises on bad lines
        assert types["repro_serve_requests_total"] == "counter"
        assert types["repro_serve_latency_us"] == "histogram"
        assert types["repro_serve_uptime_seconds"] == "gauge"
        assert ("repro_pool_workers", frozenset()) in samples

    def test_request_counters_reflect_traffic(self, serve_app):
        client = serve_app.client()
        client.run(ECHO_SPEC)
        _, samples = parse_prometheus(client.metrics())
        computed = samples[("repro_serve_requests_total",
                            frozenset({("class", "computed")}))]
        assert computed == 1
        assert samples[("repro_serve_computations_total",
                        frozenset())] == 1

    def test_counters_are_monotonic_across_scrapes(self, serve_app):
        client = serve_app.client()
        label = ("repro_serve_requests_total",
                 frozenset({("class", "cache")}))
        seen = []
        client.run(ECHO_SPEC)
        for _ in range(3):
            client.run(ECHO_SPEC)  # repeats come off the content store
            _, samples = parse_prometheus(client.metrics())
            seen.append(samples[label])
        assert seen == sorted(seen)
        assert seen[-1] > seen[0]

    def test_stats_and_metrics_agree(self, serve_app):
        client = serve_app.client()
        client.run(ECHO_SPEC)
        try:
            client.run({"experiment": "no.such", "base": {}})
        except ServeError:
            pass
        stats = client.stats()
        _, samples = parse_prometheus(client.metrics())
        for name, count in stats["by_class"].items():
            assert samples[("repro_serve_requests_total",
                            frozenset({("class", name)}))] == count
        assert samples[("repro_serve_latency_us_count",
                        frozenset({("class", "computed")}))] \
            == stats["by_class"]["computed"]

    def test_cache_counters_exported(self, serve_app):
        client = serve_app.client()
        client.run(ECHO_SPEC)
        client.run(ECHO_SPEC)
        _, samples = parse_prometheus(client.metrics())
        assert samples[("repro_cache_hits_total", frozenset())] >= 2
        assert samples[("repro_cache_writes_total", frozenset())] >= 2

    def test_metrics_rejects_post_405(self, serve_app):
        import http.client

        conn = http.client.HTTPConnection(
            serve_app.host, serve_app.port, timeout=10
        )
        try:
            conn.request("POST", "/metrics")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_content_type(self, serve_app):
        import http.client

        conn = http.client.HTTPConnection(
            serve_app.host, serve_app.port, timeout=10
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert "version=0.0.4" in response.getheader("content-type")
            response.read()
        finally:
            conn.close()


class TestServeFleetLog:
    def test_served_events_carry_sweep_trace(self, serve_app):
        client = serve_app.client()
        envelope = client.run(ECHO_SPEC)
        sweep_trace = envelope["sweep"]["trace_id"]
        assert len(sweep_trace) == 16
        served = [e for e in serve_app.app.fleet.tail()
                  if e.kind == "served"]
        assert served
        assert served[-1].fields["status"] == 200
        assert served[-1].fields["served_by"] == "computed"
        assert served[-1].fields["sweep_trace"] == sweep_trace

    def test_error_requests_logged_without_trace(self, serve_app):
        client = serve_app.client()
        try:
            client.run({"experiment": "no.such", "base": {}})
        except ServeError:
            pass
        served = [e for e in serve_app.app.fleet.tail()
                  if e.kind == "served"]
        assert served
        assert served[-1].fields["served_by"] == "error"
        assert "sweep_trace" not in served[-1].fields
