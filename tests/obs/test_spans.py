"""Span reconstruction: joins, per-stage delays, latency summaries.

The differential tests here are the observability layer's anchor: the
latency summary computed from reconstructed spans must agree exactly
with what the flat trace says, under both kernels.
"""

import json

import pytest

from repro import FetchAdd, MachineConfig, Ultracomputer
from repro.instrumentation import TraceEvent
from repro.obs import IncompleteTraceError, LatencySummary, reconstruct_spans


def _traced_run(pes=8, rounds=3, kernel="dense", capacity=4096):
    machine = Ultracomputer(MachineConfig(
        n_pes=pes, instrument=True, trace_capacity=capacity, kernel=kernel,
    ))

    def program(pe_id):
        for _ in range(rounds):
            yield FetchAdd(0, 1)

    machine.spawn_many(pes, program)
    return machine.run()


class TestReconstruction:
    def test_every_request_gets_a_complete_span(self):
        result = _traced_run()
        spans = reconstruct_spans(result.trace)
        assert len(spans) == result.requests_issued
        assert len(spans.completed()) == result.requests_issued
        for span in spans:
            assert span.complete
            assert span.tag in spans
            # issue -> network -> MM -> back: at least a few cycles
            assert span.transit_latency >= 2

    def test_combine_pairs_match_machine_count(self):
        result = _traced_run()
        spans = reconstruct_spans(result.trace)
        pairs = spans.combine_pairs()
        assert len(pairs) == result.combines > 0
        for absorbed_tag, survivor_tag in pairs:
            assert absorbed_tag in spans
            assert survivor_tag in spans
            assert absorbed_tag in spans[survivor_tag].absorbed
            assert spans[absorbed_tag].combined

    def test_stage_delays_at_least_one_cycle(self):
        # The forward pipeline moves a message at most one stage per
        # cycle, so every observed stage delay is >= 1 (service) cycle.
        result = _traced_run()
        pooled = reconstruct_spans(result.trace).stage_delays()
        assert pooled, "no stage delays reconstructed"
        for delays in pooled.values():
            assert all(delay >= 1 for delay in delays)

    def test_injection_wait_non_negative(self):
        result = _traced_run()
        for span in reconstruct_spans(result.trace):
            if span.hops:
                assert span.injection_wait >= 0

    def test_unknown_event_kind_ignored(self):
        events = [
            TraceEvent("issue", 1, tag=1, pe=0),
            TraceEvent("frobnicate", 2, tag=1),
        ]
        spans = reconstruct_spans(events)
        assert len(spans) == 1


class TestRunResultIntegration:
    def test_spans_and_latency_properties(self):
        result = _traced_run()
        assert result.spans is not None
        assert result.spans is result.spans  # cached, not re-joined
        assert result.latency.count == result.requests_issued

    def test_untraced_run_has_no_spans(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, instrument=True))

        def program(pe_id):
            yield FetchAdd(0, 1)

        machine.spawn_many(4, program)
        result = machine.run()
        assert result.trace is None
        assert result.spans is None
        assert result.latency is None

    def test_to_dict_omits_latency_when_truncated(self):
        result = _traced_run(capacity=16)
        assert result.trace_dropped > 0
        out = result.to_dict()
        assert out["trace_dropped"] == result.trace_dropped
        assert "latency" not in out

    def test_truncated_trace_raises_on_span_access(self):
        result = _traced_run(capacity=16)
        with pytest.raises(IncompleteTraceError, match="trace_capacity"):
            result.spans


class TestLatencyDifferential:
    @pytest.mark.parametrize("kernel", ["dense", "event"])
    def test_p100_matches_flat_trace_max(self, kernel):
        result = _traced_run(kernel=kernel)
        issues = {
            e.tag: e.cycle for e in result.trace if e.kind == "issue"
        }
        flat_max = max(
            e.cycle - issues[e.tag]
            for e in result.trace
            if e.kind == "reply"
        )
        latency = result.latency
        assert latency.max == flat_max
        assert latency.quantile(1.0) == flat_max

    def test_kernels_export_identical_results(self):
        dense = _traced_run(kernel="dense").to_dict()
        event = _traced_run(kernel="event").to_dict()
        assert dense["trace"] == event["trace"]
        assert dense["latency"] == event["latency"]
        assert dense == event

    @pytest.mark.parametrize("kernel", ["dense", "event"])
    def test_trace_round_trips_through_json(self, kernel):
        out = _traced_run(kernel=kernel).to_dict()
        restored = json.loads(json.dumps(out))
        assert restored["trace"] == out["trace"]
        assert restored["trace_dropped"] == 0
        # zero is a legal pe/stage/value and must survive serialization
        assert any(e.get("pe") == 0 for e in restored["trace"])
        assert any(e.get("stage") == 0 for e in restored["trace"])
        assert any(
            e.get("value") == 0
            for e in restored["trace"]
            if e["kind"] == "reply"
        )


class TestIncompleteTrace:
    def test_dropped_events_raise(self):
        with pytest.raises(IncompleteTraceError, match="dropped 3"):
            reconstruct_spans([], dropped=3)

    def test_unknown_tag_raises(self):
        events = [TraceEvent("reply", 5, tag=7)]
        with pytest.raises(IncompleteTraceError, match="no captured issue"):
            reconstruct_spans(events)

    def test_duplicate_issue_raises(self):
        events = [
            TraceEvent("issue", 1, tag=1, pe=0),
            TraceEvent("issue", 2, tag=1, pe=0),
        ]
        with pytest.raises(IncompleteTraceError, match="duplicate"):
            reconstruct_spans(events)

    def test_combine_with_unknown_survivor_raises(self):
        events = [
            TraceEvent("issue", 1, tag=2, pe=0),
            TraceEvent("combine", 2, tag=2, stage=0, tag2=99),
        ]
        with pytest.raises(IncompleteTraceError, match="survivor"):
            reconstruct_spans(events)


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.max == 0
        assert summary.quantile(0.9) == 0.0

    def test_single_value(self):
        summary = LatencySummary.from_values([7])
        assert summary.p50 == summary.p95 == summary.p99 == 7.0
        assert summary.quantile(1.0) == 7.0 == summary.max

    def test_nearest_rank_on_known_sample(self):
        summary = LatencySummary.from_values(range(1, 101))
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.quantile(1.0) == 100.0
        assert summary.max == 100

    def test_out_of_range_rejected(self):
        summary = LatencySummary.from_values([1, 2])
        with pytest.raises(ValueError):
            summary.quantile(1.5)

    def test_to_dict_shape(self):
        out = LatencySummary.from_values([3, 5, 5]).to_dict()
        assert out == {
            "count": 3, "mean": pytest.approx(13 / 3),
            "p50": 5.0, "p95": 5.0, "p99": 5.0, "max": 5,
        }
