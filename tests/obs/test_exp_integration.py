"""The obs point functions ride the experiment engine and its cache."""

from repro.exp import SweepRunner, available, drift_spec, timeline_spec


class TestRegistration:
    def test_obs_points_registered(self):
        names = available()
        assert "obs.drift" in names
        assert "obs.timeline" in names


class TestTimelineSpec:
    def test_runs_and_caches(self):
        spec = timeline_spec(pes=8, cycles=200, window=100)
        cold = SweepRunner(workers=1).run(spec)
        warm = SweepRunner(workers=1).run(spec)
        assert cold.cached_points == 0 and cold.computed_points == 1
        assert warm.cached_points == 1 and warm.computed_points == 0
        assert cold.payloads == warm.payloads
        samples = cold.payloads[0]["samples"]
        assert [s["cycle"] for s in samples] == [100, 200]

    def test_rate_is_the_sweep_axis(self):
        spec = timeline_spec(rate=0.1)
        assert spec.axes[0].name == "rate"
        assert spec.axes[0].values == (0.1,)


class TestDriftSpec:
    def test_runs_through_the_engine(self):
        spec = drift_spec(cycles=300)
        result = SweepRunner(workers=1).run(spec)
        report = result.payloads[0]
        assert report["ok"] is True
        assert report["stages"]
        assert report["offered_rate"] == 0.08

    def test_threshold_parameter_flows_through(self):
        spec = drift_spec(cycles=300, threshold=1e-9)
        result = SweepRunner(workers=1).run(spec)
        report = result.payloads[0]
        assert report["ok"] is False
        assert report["warnings"]
