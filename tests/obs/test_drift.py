"""Analytic drift monitor: simulation vs the closed-form model."""

import json

import pytest

from repro.analysis.queueing import predict_uniform_run, switch_delay
from repro.obs import measure_drift


class TestMeasureDrift:
    def test_reference_point_within_threshold(self):
        # The Figure 7 reference point CI gates on, at reduced cycles.
        report = measure_drift(cycles=800)
        assert report.ok
        assert report.max_stage_error < report.threshold
        assert report.round_trip_error < report.threshold
        assert report.warnings() == []
        assert report.requests > 0
        assert 0.0 < report.observed_rate < 1.0
        # per-stage comparison covers stages 0..D-2 (the last stage has
        # no downstream enqueue to pin down its departure)
        assert [s.stage for s in report.stages] == [0, 1, 2]
        for stage in report.stages:
            assert stage.samples == report.requests

    def test_tiny_threshold_flags_warnings(self):
        report = measure_drift(cycles=400, threshold=1e-9)
        assert not report.ok
        warnings = report.warnings()
        assert warnings
        assert any("drifts" in w for w in warnings)

    def test_to_dict_round_trips_through_json(self):
        report = measure_drift(cycles=400)
        restored = json.loads(json.dumps(report.to_dict()))
        assert restored["ok"] is True
        assert restored["round_trip"]["rel_error"] >= 0
        for stage in restored["stages"]:
            assert stage["rel_error"] >= 0
            assert stage["samples"] > 0
        assert restored["threshold"] == report.threshold

    def test_observed_rate_feeds_the_model(self):
        report = measure_drift(cycles=400)
        prediction = predict_uniform_run(
            report.n_pes, report.k, report.observed_rate
        )
        assert report.stages[0].predicted_delay == pytest.approx(
            prediction.forward_switch_delay
        )
        assert report.round_trip_predicted == pytest.approx(
            prediction.round_trip
        )


class TestPredictUniformRun:
    def test_forward_delay_uses_request_packets(self):
        prediction = predict_uniform_run(16, 2, 0.1)
        # forward queues carry 1-packet requests: m=1, not the m=2
        # round-trip convention
        assert prediction.forward_switch_delay == pytest.approx(
            switch_delay(2, 1, 0.1)
        )

    def test_round_trip_uses_averaged_m(self):
        from repro.analysis.queueing import round_trip_time

        prediction = predict_uniform_run(16, 2, 0.1)
        assert prediction.round_trip == pytest.approx(
            round_trip_time(16, 2, 2, 0.1)
        )

    def test_zero_load_degenerates_to_service_only(self):
        prediction = predict_uniform_run(16, 2, 0.0)
        assert prediction.forward_switch_delay == 1.0
