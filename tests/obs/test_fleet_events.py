"""The fleet event log: ring + JSONL sink, readers, flight dumps,
legacy audit-file adoption, and the merged Chrome trace."""

import json

import pytest

from repro.obs.events import (
    DUMP_SCHEMA,
    EventLog,
    FleetEvent,
    default_dump_dir,
    flight_dump,
    iter_batch_events,
    new_span_id,
    new_trace_id,
    read_dump,
    read_events,
    validate_event,
)
from repro.obs.perfetto import fleet_chrome_trace


class TestEventLog:
    def test_emit_builds_flat_events(self):
        log = EventLog("t" * 16, "driver", enabled=True)
        event = log.emit("claim", span="b0.g1", block=0, gen=1)
        assert event.kind == "claim"
        assert event.trace == "t" * 16
        assert event.worker == "driver"
        assert event.span == "b0.g1"
        raw = event.to_dict()
        assert raw["block"] == 0 and raw["gen"] == 1
        assert validate_event(raw) is raw

    def test_ring_is_bounded_and_tail_is_oldest_first(self):
        log = EventLog("t", "w", capacity=4, enabled=True)
        for i in range(10):
            log.emit("point", index=i)
        tail = log.tail()
        assert [e.fields["index"] for e in tail] == [6, 7, 8, 9]
        assert [e.fields["index"] for e in log.tail(2)] == [8, 9]

    def test_jsonl_sink_is_line_per_event(self, tmp_path):
        path = tmp_path / "events" / "w.jsonl"
        log = EventLog("abc", "shard-0", path=path, enabled=True)
        log.emit("worker_start", pid=1)
        log.emit("claim", span="b0.g1", block=0)
        log.close()
        events = read_events(path)
        assert [e.kind for e in events] == ["worker_start", "claim"]
        assert all(e.trace == "abc" for e in events)

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "w.jsonl"
        good = json.dumps({"ts": 1.0, "kind": "claim", "worker": "w"})
        path.write_text(good + "\n" + good[: len(good) // 2])
        events = read_events(path)
        assert len(events) == 1 and events[0].kind == "claim"

    def test_kill_switch_disables_emission(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LOG", "0")
        path = tmp_path / "w.jsonl"
        log = EventLog("t", "w", path=path)
        assert log.emit("claim") is None
        assert log.tail() == []
        assert not path.exists()

    def test_disabled_flag_beats_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_LOG", raising=False)
        log = EventLog("t", "w", enabled=False)
        assert log.emit("claim") is None

    def test_ids_are_hex_and_distinct(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        int(new_trace_id(), 16)
        assert new_trace_id() != new_trace_id()


class TestValidateEvent:
    @pytest.mark.parametrize("raw", [
        "not a dict",
        {"kind": "x", "worker": "w"},                     # no ts
        {"ts": float("nan"), "kind": "x", "worker": "w"},
        {"ts": float("inf"), "kind": "x", "worker": "w"},
        {"ts": 1.0, "kind": "", "worker": "w"},
        {"ts": 1.0, "kind": "x", "worker": ""},
        {"ts": 1.0, "kind": "x", "worker": "w", "trace": 7},
        {"ts": 1.0, "kind": "x", "worker": "w", "span": 3},
    ])
    def test_rejects_malformed(self, raw):
        with pytest.raises(ValueError):
            validate_event(raw)

    def test_accepts_minimal_and_full(self):
        validate_event({"ts": 1, "kind": "x", "worker": "w"})
        validate_event({"ts": 1.5, "kind": "claim", "worker": "shard-0",
                        "trace": "ab", "span": "b0.g1", "parent": "b0.g0",
                        "block": 0})


class TestBatchReader:
    def test_merges_logs_time_ordered_with_trace_filter(self, tmp_path):
        events_dir = tmp_path / "events"
        a = EventLog("t1", "shard-0", path=events_dir / "shard-0.jsonl",
                     enabled=True)
        b = EventLog("t2", "shard-1", path=events_dir / "shard-1.jsonl",
                     enabled=True)
        a.emit("worker_start")
        b.emit("worker_start")
        a.emit("worker_exit")
        a.close(), b.close()
        merged = iter_batch_events(tmp_path)
        assert len(merged) == 3
        assert [e.ts for e in merged] == sorted(e.ts for e in merged)
        only_t1 = iter_batch_events(tmp_path, trace="t1")
        assert {e.trace for e in only_t1} == {"t1"}
        assert len(only_t1) == 2

    def test_adopts_legacy_audit_files(self, tmp_path):
        events_dir = tmp_path / "events"
        events_dir.mkdir()
        (events_dir / "steal-b3-g2.json").write_text(json.dumps({
            "event": "steal", "at": 5.0, "block": 3, "gen": 2,
            "victim_gen": 1, "thief": 1, "stale_s": 0.4,
        }))
        (events_dir / "respawn-0.json").write_text(json.dumps({
            "event": "respawn", "at": 6.0, "worker": 2, "exitcode": -9,
        }))
        events = iter_batch_events(tmp_path)
        assert [e.kind for e in events] == ["steal", "respawn"]
        steal = events[0]
        assert steal.worker == "shard-1"
        assert steal.span == "b3.g2"
        assert steal.fields["legacy"] is True
        assert steal.fields["victim_gen"] == 1
        # legacy events have no trace, so a trace filter keeps them
        assert len(iter_batch_events(tmp_path, trace="zz")) == 2

    def test_missing_events_dir_is_empty(self, tmp_path):
        assert iter_batch_events(tmp_path / "nope") == []


class TestFlightDump:
    def _events(self, n=5):
        return [FleetEvent(ts=float(i), kind="point", trace="t",
                           worker="shard-0", fields={"index": i})
                for i in range(n)]

    def test_round_trip(self, tmp_path):
        path = flight_dump(tmp_path, "worker-crash", self._events(),
                           trace="t", extra={"batch": "b1"})
        assert path.name.startswith("crash-worker-crash-")
        payload = read_dump(path)
        assert payload["schema"] == DUMP_SCHEMA
        assert payload["reason"] == "worker-crash"
        assert payload["trace"] == "t"
        assert payload["batch"] == "b1"
        assert [e["index"] for e in payload["events"]] == [0, 1, 2, 3, 4]

    def test_limit_keeps_newest(self, tmp_path):
        path = flight_dump(tmp_path, "steal", self._events(10), limit=3)
        payload = read_dump(path)
        assert [e["index"] for e in payload["events"]] == [7, 8, 9]

    def test_read_dump_rejects_wrong_schema(self, tmp_path):
        bogus = tmp_path / "crash-x-1.json"
        bogus.write_text(json.dumps({"schema": "nope", "events": []}))
        with pytest.raises(ValueError):
            read_dump(bogus)

    def test_default_dump_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_DUMPS", str(tmp_path / "d"))
        assert default_dump_dir() == tmp_path / "d"


class TestFleetChromeTrace:
    def _sweep_events(self):
        """A synthetic 2-worker sweep with one steal."""
        t = "trace00trace0000"
        mk = lambda ts, worker, kind, span=None, parent=None, **f: \
            FleetEvent(ts=ts, kind=kind, trace=t, worker=worker,
                       span=span, parent=parent, fields=f)
        return [
            mk(0.00, "driver", "batch_start", tasks=2),
            mk(0.01, "shard-0", "worker_start", pid=11),
            mk(0.01, "shard-1", "worker_start", pid=12),
            mk(0.02, "shard-0", "claim", span="b0.g1", block=0, gen=1),
            mk(0.05, "shard-0", "heartbeat", span="b0.g1", block=0),
            mk(0.30, "shard-1", "steal", span="b0.g2", parent="b0.g1",
               block=0, gen=2, victim_gen=1),
            mk(0.31, "shard-1", "claim", span="b0.g2", block=0, gen=2),
            mk(0.35, "shard-1", "point", span="p1", parent="b0.g2",
               index=0, dur=0.03),
            mk(0.36, "shard-1", "result_write", span="b0.g2", block=0,
               gen=2, points=1),
            mk(0.40, "shard-1", "worker_exit", reason="done"),
            mk(0.41, "driver", "batch_done", complete=True),
        ]

    def test_one_process_track_per_worker(self):
        doc = fleet_chrome_trace(self._sweep_events())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"
                and e.get("name") == "process_name"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"driver", "shard-0", "shard-1"}
        pids = {e["pid"] for e in meta}
        assert len(pids) == 3  # distinct track per process
        assert doc["otherData"]["workers"] == ["driver", "shard-0",
                                               "shard-1"]

    def test_steal_flow_pair_links_thief_claim(self):
        doc = fleet_chrome_trace(self._sweep_events())
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0]["id"] == ends[0]["id"] == 0
        assert ends[0]["bp"] == "e"
        assert starts[0]["ts"] <= ends[0]["ts"]

    def test_block_and_point_slices(self):
        doc = fleet_chrome_trace(self._sweep_events())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert "block 0" in names
        assert "point 0" in names
        block = next(e for e in slices if e["name"] == "block 0")
        assert block["dur"] > 0

    def test_trace_filter_drops_foreign_sweeps(self):
        events = self._sweep_events()
        events.append(FleetEvent(ts=9.0, kind="claim", trace="other",
                                 worker="shard-9", span="b5.g1"))
        doc = fleet_chrome_trace(events, trace="trace00trace0000")
        assert "shard-9" not in doc["otherData"]["workers"]

    def test_empty_input(self):
        doc = fleet_chrome_trace([])
        assert doc["traceEvents"] == []
