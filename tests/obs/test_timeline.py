"""Windowed time-series collection over a running machine."""

import json

import pytest

from repro import MachineConfig, Ultracomputer
from repro.obs import collect_timeline
from repro.obs.timeline import SERIES_FIELDS
from repro.workloads.synthetic import SyntheticTrafficDriver, TrafficSpec


def _traffic_machine(pes=16, rate=0.25, instrument=False):
    machine = Ultracomputer(MachineConfig(n_pes=pes, instrument=instrument))
    driver = SyntheticTrafficDriver(
        machine, TrafficSpec(rate=rate, pattern="hotspot",
                             hot_fraction=0.3, seed=5)
    )
    machine.attach_driver(driver)
    return machine


class TestCollect:
    def test_sample_cadence_and_short_final_window(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=250, window=100)
        assert [s.cycle for s in timeline] == [100, 200, 250]
        assert timeline.window == 100
        assert len(timeline) == 3

    def test_throughput_deltas_sum_to_machine_totals(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=300, window=50)
        assert sum(s.requests_issued for s in timeline) == sum(
            pni.requests_issued for pni in machine.pnis
        )
        assert sum(s.replies for s in timeline) == sum(
            pni.replies_received for pni in machine.pnis
        )
        assert sum(s.combines for s in timeline) == sum(
            network.total_combines() for network in machine.networks
        )

    def test_mm_utilization_is_a_fraction(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=200, window=50)
        assert any(s.mm_utilization > 0 for s in timeline)
        for sample in timeline:
            assert 0.0 <= sample.mm_utilization <= 1.0

    def test_per_stage_gauge_matches_total(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=200, window=50)
        for sample in timeline:
            assert sum(sample.forward_packets_per_stage) == \
                sample.forward_packets

    def test_works_without_instrumentation(self):
        machine = _traffic_machine(instrument=False)
        timeline = collect_timeline(machine, cycles=100, window=50)
        assert len(timeline) == 2
        # nothing was registered behind the machine's back
        assert len(machine.instrumentation.registry) == 0

    def test_resumes_from_current_cycle(self):
        machine = _traffic_machine()
        machine.run_cycles(30)
        timeline = collect_timeline(machine, cycles=100, window=50)
        assert [s.cycle for s in timeline] == [80, 130]


class TestSeriesAccess:
    def test_series_and_points(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=150, window=50)
        for name in SERIES_FIELDS:
            assert len(timeline.series(name)) == len(timeline)
        points = timeline.points("combines")
        assert [x for x, _ in points] == [50.0, 100.0, 150.0]
        assert all(isinstance(y, float) for _, y in points)

    def test_unknown_series_rejected(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=50, window=50)
        with pytest.raises(ValueError, match="unknown series"):
            timeline.series("nonexistent")


class TestValidationAndExport:
    @pytest.mark.parametrize(
        ("cycles", "window"), [(0, 10), (100, 0), (-5, 10)]
    )
    def test_bad_parameters_rejected(self, cycles, window):
        machine = _traffic_machine()
        with pytest.raises(ValueError):
            collect_timeline(machine, cycles=cycles, window=window)

    def test_to_dict_round_trips_through_json(self):
        machine = _traffic_machine()
        timeline = collect_timeline(machine, cycles=100, window=50)
        restored = json.loads(json.dumps(timeline.to_dict()))
        assert restored["window"] == 50
        assert len(restored["samples"]) == 2
        for field in SERIES_FIELDS:
            assert field in restored["samples"][0]
