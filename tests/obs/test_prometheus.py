"""Prometheus text-format exposition: escaping, grouping, histograms,
and the golden-file pin of the exact output bytes."""

from pathlib import Path

import pytest

from helpers import parse_prometheus
from repro.instrumentation import MetricsRegistry
from repro.obs.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    render_prometheus,
    sanitize_name,
)

GOLDEN = Path(__file__).parent / "goldens" / "metrics.prom"


def _golden_registry() -> MetricsRegistry:
    """The fixed registry the golden file pins."""
    reg = MetricsRegistry()
    reg.counter("serve.requests", **{"class": "computed"}).inc(3)
    reg.counter("serve.requests", **{"class": "error"}).inc()
    reg.gauge("pool.workers").set(2)
    hist = reg.histogram(
        "serve.latency_us", (100, 1000, 10000), **{"class": "computed"}
    )
    for value in (50, 700, 900, 5000, 20000):
        hist.observe(value)
    return reg


class TestNamesAndValues:
    def test_sanitize_name(self):
        assert sanitize_name("serve.latency_us") == "serve_latency_us"
        assert sanitize_name("a-b c") == "a_b_c"
        assert sanitize_name("9lives") == "_9lives"
        assert sanitize_name("ok:subsystem_x") == "ok:subsystem_x"

    @pytest.mark.parametrize("raw,expected", [
        ('say "hi"', 'say \\"hi\\"'),
        ("back\\slash", "back\\\\slash"),
        ("two\nlines", "two\\nlines"),
        ("plain", "plain"),
    ])
    def test_escape_label_value(self, raw, expected):
        assert escape_label_value(raw) == expected

    def test_format_value(self):
        assert format_value(7) == "7"
        assert format_value(7.0) == "7"
        assert format_value(0.25) == "0.25"
        assert format_value(True) == "1"
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"


class TestRender:
    def test_counters_get_total_suffix_and_type_line(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(5)
        text = render_prometheus(reg)
        types, samples = parse_prometheus(text)
        assert types["repro_cache_hits_total"] == "counter"
        assert samples[("repro_cache_hits_total", frozenset())] == 5

    def test_escaped_labels_survive_a_parse(self):
        reg = MetricsRegistry()
        reg.counter("odd", key='quo"te\\path\nx').inc(2)
        text = render_prometheus(reg)
        _, samples = parse_prometheus(text)
        assert samples[("repro_odd_total",
                        frozenset({("key", 'quo"te\\path\nx')}))] == 2

    def test_counter_monotonicity_across_snapshots(self):
        reg = MetricsRegistry()
        counter = reg.counter("serve.requests", **{"class": "computed"})
        label = frozenset({("class", "computed")})
        seen = []
        for _ in range(3):
            counter.inc(2)
            _, samples = parse_prometheus(render_prometheus(reg))
            seen.append(samples[("repro_serve_requests_total", label)])
        assert seen == sorted(seen)
        assert seen[-1] > seen[0]

    def test_histogram_buckets_are_cumulative_and_capped_by_inf(self):
        text = render_prometheus(_golden_registry())
        _, samples = parse_prometheus(text)
        base = "repro_serve_latency_us_bucket"
        edges = ["100", "1000", "10000", "+Inf"]
        counts = [
            samples[(base, frozenset({("class", "computed"),
                                      ("le", edge)}))]
            for edge in edges
        ]
        assert counts == sorted(counts)
        count = samples[("repro_serve_latency_us_count",
                         frozenset({("class", "computed")}))]
        assert counts[-1] == count == 5

    def test_namespace_and_trailing_newline(self):
        reg = MetricsRegistry()
        reg.gauge("x").set(1)
        assert render_prometheus(reg, namespace="other") \
            .startswith("# TYPE other_x gauge")
        assert render_prometheus(reg).endswith("\n")
        assert render_prometheus([]) == ""

    def test_content_type_is_text_format_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestGoldenFile:
    def test_exact_bytes(self):
        assert render_prometheus(_golden_registry()) == GOLDEN.read_text()

    def test_golden_file_parses(self):
        types, samples = parse_prometheus(GOLDEN.read_text())
        assert types == {
            "repro_serve_requests_total": "counter",
            "repro_pool_workers": "gauge",
            "repro_serve_latency_us": "histogram",
        }
        assert len(samples) == 9
