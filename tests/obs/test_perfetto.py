"""Chrome/Perfetto trace export: document structure and flow pairing."""

import json

from repro import FetchAdd, MachineConfig, Ultracomputer
from repro.obs import chrome_trace, write_chrome_trace
from repro.obs.perfetto import PID_MEMORY, PID_NETWORK, PID_PES


def _traced_run(pes=8, rounds=2, capacity=4096):
    machine = Ultracomputer(MachineConfig(
        n_pes=pes, instrument=True, trace_capacity=capacity,
    ))

    def program(pe_id):
        for _ in range(rounds):
            yield FetchAdd(0, 1)

    machine.spawn_many(pes, program)
    return machine.run()


class TestChromeTrace:
    def test_document_structure(self):
        result = _traced_run()
        doc = chrome_trace(result.trace)
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        assert "M" in phases and "X" in phases
        assert doc["otherData"]["dropped"] == 0
        assert doc["otherData"]["events"] == len(result.trace)
        for event in events:
            if event["ph"] == "X":
                assert {"pid", "tid", "ts", "dur", "name"} <= set(event)
                assert event["dur"] >= 1

    def test_one_flow_pair_per_combine(self):
        result = _traced_run()
        events = chrome_trace(result.trace)["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == result.combines
        assert len(finishes) == result.combines
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_tracks_cover_all_three_layers(self):
        result = _traced_run()
        events = chrome_trace(result.trace)["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {PID_PES, PID_NETWORK, PID_MEMORY} <= pids
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(names) == 3

    def test_write_is_valid_json(self, tmp_path):
        result = _traced_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, result.trace)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

    def test_tolerates_truncated_trace(self):
        # Unlike span reconstruction, the exporter renders what survived
        # (a partial picture is still loadable) and flags the loss.
        result = _traced_run(capacity=16)
        assert result.trace_dropped > 0
        doc = chrome_trace(result.trace, dropped=result.trace_dropped)
        assert doc["otherData"]["dropped"] == result.trace_dropped
        assert doc["traceEvents"]

    def test_empty_trace_has_only_metadata(self):
        doc = chrome_trace([])
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert doc["otherData"]["events"] == 0
