"""Tests for the cache-integrated program driver (sections 3.2, 3.4)."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.memory.cache import Segment
from repro.pe.cached import CacheControl, CachedProgramDriver


def make(n_pes=4, segments=None, cache_lines=32):
    machine = Ultracomputer(MachineConfig(n_pes=n_pes))
    driver = CachedProgramDriver(
        machine, cache_lines=cache_lines, segments=segments
    )
    machine.attach_driver(driver)
    return machine, driver


class TestReadCaching:
    def test_repeated_reads_hit(self):
        machine, driver = make()
        for i in range(8):
            machine.poke(1000 + i, i)

        def program(pe_id):
            total = 0
            for _round in range(4):
                for i in range(8):
                    total += yield Load(1000 + i)
            return total

        driver.spawn(program)
        machine.run(1_000_000)
        pe = driver.pes[0]
        assert pe.return_value == 4 * sum(range(8))
        assert pe.cache_hits == 3 * 8
        assert pe.network_refs == 8  # only the first pass misses

    def test_caching_reduces_network_traffic_vs_plain_driver(self):
        def program(pe_id):
            total = 0
            for _round in range(5):
                for i in range(8):
                    total += yield Load(1000 + i)
            return total

        cached_machine, driver = make()
        driver.spawn(program)
        cached_machine.run(1_000_000)
        cached_refs = cached_machine.stats().requests_issued

        plain_machine = Ultracomputer(MachineConfig(n_pes=4))
        plain_machine.spawn(program)
        plain_machine.run(1_000_000)
        plain_refs = plain_machine.stats().requests_issued

        assert cached_refs < plain_refs / 3

    def test_uncacheable_segment_always_misses(self):
        machine, driver = make(
            segments=[Segment("shared", base=500, length=8, cacheable=False)]
        )
        machine.poke(500, 7)

        def program(pe_id):
            a = yield Load(500)
            b = yield Load(500)
            return a + b

        driver.spawn(program)
        machine.run(1_000_000)
        pe = driver.pes[0]
        assert pe.return_value == 14
        assert pe.cache_hits == 0
        assert pe.network_refs == 2


class TestWriteBack:
    def test_writes_absorbed_until_flush(self):
        machine, driver = make()

        def program(pe_id):
            yield Store(2000, 42)
            value = yield Load(2000)  # local hit
            yield CacheControl("flush")
            return value

        driver.spawn(program)
        machine.run(1_000_000)
        assert driver.pes[0].return_value == 42
        assert machine.peek(2000) == 42  # flushed to central memory

    def test_unflushed_write_stays_local(self):
        machine, driver = make()

        def program(pe_id):
            yield Store(2000, 42)
            return True

        driver.spawn(program)
        machine.run(1_000_000)
        # no flush and no eviction: central memory never saw the write
        assert machine.peek(2000) == 0
        assert driver.pes[0].cache.dirty_words() == 1

    def test_eviction_writes_back_dirty_words(self):
        machine, driver = make(cache_lines=4)

        def program(pe_id):
            for i in range(4):
                yield Store(3000 + i, i + 1)
            # 4 more stores evict the first 4 (LRU)
            for i in range(4, 8):
                yield Store(3000 + i, i + 1)
            return True

        driver.spawn(program)
        machine.run(1_000_000)
        assert machine.dump_region(3000, 4) == [1, 2, 3, 4]
        assert machine.dump_region(3004, 4) == [0, 0, 0, 0]  # still cached

    def test_release_discards_dirty_data(self):
        machine, driver = make()

        def program(pe_id):
            yield Store(2000, 42)
            yield CacheControl("release")
            value = yield Load(2000)  # refetched from memory: 0
            return value

        driver.spawn(program)
        machine.run(1_000_000)
        assert driver.pes[0].return_value == 0
        assert machine.peek(2000) == 0


class TestCoherenceDiscipline:
    def test_rmw_invalidates_cached_copy(self):
        """A fetch-and-add on a cached, dirty address must write the
        cached value back first and read-modify-write at the MNI."""
        machine, driver = make()

        def program(pe_id):
            yield Store(2000, 10)  # cached + dirty
            old = yield FetchAdd(2000, 5)  # invalidate -> memory RMW
            final = yield Load(2000)
            return (old, final)

        driver.spawn(program)
        machine.run(1_000_000)
        old, final = driver.pes[0].return_value
        assert old == 10  # the dirty value reached memory first
        assert final == 15

    def test_stale_shared_read_hazard_demonstrated(self):
        """Two PEs caching the same read-write word DO see stale data —
        the configuration the paper prohibits."""
        machine, driver = make(n_pes=4)

        def writer(pe_id):
            yield Load(4000)  # cache the (0) value
            yield 20
            yield Store(4000, 99)
            yield CacheControl("flush")
            return True

        def reader(pe_id):
            first = yield Load(4000)  # caches 0
            yield 60  # wait well past the writer's flush
            second = yield Load(4000)  # HIT: stale 0
            return (first, second)

        driver.spawn(writer)
        driver.spawn(reader)
        machine.run(1_000_000)
        first, second = driver.pes[1].return_value
        assert machine.peek(4000) == 99  # memory has the new value
        assert second == 0  # ... but the reader's cache is stale

    def test_uncacheable_marking_restores_coherence(self):
        machine, driver = make(
            n_pes=4,
            segments=[Segment("v", base=4000, length=1, cacheable=False)],
        )

        def writer(pe_id):
            yield 10
            yield Store(4000, 99)
            return True

        def reader(pe_id):
            while True:
                value = yield Load(4000)
                if value == 99:
                    return value
                yield 3

        driver.spawn(writer)
        driver.spawn(reader)
        machine.run(1_000_000)
        assert driver.pes[1].return_value == 99


class TestProtocol:
    def test_bad_control_action(self):
        machine, driver = make()

        def program(pe_id):
            yield CacheControl("defragment")

        driver.spawn(program)
        with pytest.raises(ValueError, match="defragment"):
            machine.run(10_000)

    def test_done_waits_for_write_backlog(self):
        machine, driver = make(cache_lines=2)

        def program(pe_id):
            for i in range(6):
                yield Store(5000 + i, i)
            yield CacheControl("flush")
            return True

        driver.spawn(program)
        machine.run(1_000_000)
        assert machine.dump_region(5000, 6) == [0, 1, 2, 3, 4, 5]
