"""Tests for I/O processors (section 3.5's heterogeneous-PE sketch)."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.pe.io import IOProcessor, StreamLayout, consumer_program


def make_machine(n_pes=4):
    return Ultracomputer(MachineConfig(n_pes=n_pes))


class TestStreaming:
    def test_device_words_reach_consumer_in_order(self):
        machine = make_machine()
        stream = StreamLayout(base=100, capacity=8)
        data = list(range(1000, 1020))
        io_processor = IOProcessor(machine, 3, stream, iter(data))
        machine.attach_driver(io_processor)
        sink: list = []
        machine.spawn(lambda pe_id: consumer_program(pe_id, stream, len(data), sink))
        machine.run(200_000)
        assert sink == data  # exact content, exact order
        assert io_processor.words_streamed == len(data)

    def test_publish_waits_for_store_ack(self):
        """The section 3.1.4 fence: whenever the producer counter reads
        n, words 0..n-1 must already be in memory.  Checked by sampling
        the invariant every machine cycle."""
        machine = make_machine()
        stream = StreamLayout(base=100, capacity=8)
        data = [7 * i + 3 for i in range(12)]
        io_processor = IOProcessor(machine, 3, stream, iter(data))
        machine.attach_driver(io_processor)
        sink: list = []
        machine.spawn(lambda pe_id: consumer_program(pe_id, stream, len(data), sink))
        for _ in range(200_000):
            if machine.quiescent():
                break
            machine.step()
            produced = machine.peek(stream.produced)
            consumed = machine.peek(stream.consumed)
            # only the live window is guaranteed resident (older slots
            # are legitimately overwritten after the ring wraps)
            for index in range(consumed, produced):
                assert machine.peek(stream.slot(index)) == data[index], (
                    f"counter={produced} but word {index} not yet visible"
                )
        assert sink == data

    def test_ring_backpressure_with_slow_consumer(self):
        machine = make_machine()
        stream = StreamLayout(base=100, capacity=4)
        data = list(range(16))
        io_processor = IOProcessor(machine, 3, stream, iter(data))
        machine.attach_driver(io_processor)
        sink: list = []

        # consume with long pauses so the ring fills
        def consumer(pe_id):
            from repro.core.memory_ops import FetchAdd, Load

            taken = 0
            while taken < len(data):
                yield 10
                produced = yield Load(stream.produced)
                while taken < produced:
                    value = yield Load(stream.slot(taken))
                    sink.append(value)
                    taken += 1
                    yield FetchAdd(stream.consumed, 1)
            return True

        machine.spawn(consumer)
        machine.run(300_000)
        assert sink == data
        assert io_processor.backpressure_cycles > 0  # ring filled up

    def test_empty_device(self):
        machine = make_machine()
        stream = StreamLayout(base=100, capacity=4)
        io_processor = IOProcessor(machine, 3, stream, iter([]))
        machine.attach_driver(io_processor)
        machine.run(1000)
        assert io_processor.done()
        assert io_processor.words_streamed == 0

    def test_two_streams_two_devices(self):
        """Heterogeneity: two I/O processors on different PE slots feed
        independent streams concurrently."""
        machine = make_machine(n_pes=4)
        streams = [StreamLayout(base=100, capacity=8),
                   StreamLayout(base=200, capacity=8)]
        payloads = [list(range(10)), list(range(50, 58))]
        sinks: list[list] = [[], []]
        for i in (0, 1):
            machine.attach_driver(
                IOProcessor(machine, 2 + i, streams[i], iter(payloads[i]))
            )
            machine.spawn(
                lambda pe_id, i=i: consumer_program(
                    pe_id, streams[i], len(payloads[i]), sinks[i]
                )
            )
        machine.run(300_000)
        assert sinks[0] == payloads[0]
        assert sinks[1] == payloads[1]

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            StreamLayout(base=0, capacity=0)
        assert StreamLayout(base=0, capacity=4).footprint == 6
