"""Tests for the PE assembler."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.pe import isa
from repro.pe.assembler import AssemblyError, assemble, disassemble
from repro.pe.processor import Processor, ProcessorDriver

SUM_LOOP = """
    ; sum 16 consecutive words from central memory
    li   r1, 0          ; sum
    li   r2, 1000       ; base address
    li   r3, 16         ; count
loop:
    load r4, r2
    add  r1, r1, r4
    addi r2, r2, 1
    addi r3, r3, -1
    bnz  r3, loop
    halt
"""


class TestSyntax:
    def test_basic_program(self):
        program = assemble(SUM_LOOP)
        assert isinstance(program[0], isa.Li)
        assert isinstance(program[3], isa.LoadR)
        assert isinstance(program[-1], isa.Halt)

    def test_labels_resolve(self):
        program = assemble(SUM_LOOP)
        branch = [i for i in program if isinstance(i, isa.Bnz)][0]
        assert program[branch.target] == program[3]  # the load

    def test_label_on_its_own_line(self):
        program = assemble("start:\n  jump start\n")
        assert program[0].target == 0

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("# leading comment\n\nli r1, 5 ; trailing\n")
        assert len(program) == 1

    def test_hex_immediates(self):
        program = assemble("li r1, 0x10\nhalt\n")
        assert program[0].imm == 16

    def test_numeric_branch_targets(self):
        program = assemble("li r1, 1\nbnz r1, 0\n")
        assert program[1].target == 0

    def test_fetch_add_and_store(self):
        program = assemble("li r2, 0\nli r3, 1\nfaa r4, r2, r3\nstore r4, r2\nhalt\n")
        assert isinstance(program[2], isa.FaaR)
        assert isinstance(program[3], isa.StoreR)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1\n")

    def test_unknown_label(self):
        with pytest.raises(AssemblyError, match="unknown label"):
            assemble("jump nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\nhalt\na:\nhalt\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="takes 2 operands"):
            assemble("li r1\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="expected register"):
            assemble("mov r1, x9\n")

    def test_register_range_checked(self):
        with pytest.raises(AssemblyError):
            assemble("li r99, 1\n")

    def test_writing_r0_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("li r0, 1\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("halt\nbogus r1\n")


class TestRoundTrip:
    def test_disassemble_reassembles(self):
        program = assemble(SUM_LOOP)
        text = disassemble(program)
        # disassembly is numeric-target assembly; strip the pc prefixes
        body = "\n".join(line.split(": ", 1)[1] for line in text.splitlines())
        again = assemble(body)
        assert again == program


class TestExecution:
    def test_assembled_program_runs_on_machine(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        for i in range(16):
            machine.poke(1000 + i, i + 1)
        processor = Processor(0, assemble(SUM_LOOP), machine.pnis[0])
        driver = ProcessorDriver()
        driver.add(processor)
        machine.attach_driver(driver)
        machine.run()
        assert processor.registers[1] == sum(range(1, 17))
