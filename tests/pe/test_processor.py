"""Tests for the register-locking processor (section 3.5)."""

from repro.core.machine import MachineConfig, Ultracomputer
from repro.pe import isa, programs
from repro.pe.processor import Processor, ProcessorDriver


def run_program(program, *, n_pes=4, setup=None, cycles=100_000):
    machine = Ultracomputer(MachineConfig(n_pes=n_pes))
    if setup:
        setup(machine)
    driver = ProcessorDriver()
    processor = Processor(0, program, machine.pnis[0])
    driver.add(processor)
    machine.attach_driver(driver)
    machine.run(cycles)
    return processor, machine


class TestExecution:
    def test_arithmetic(self):
        program = [
            isa.Li(1, 6),
            isa.Li(2, 7),
            isa.Mul(3, 1, 2),
            isa.Sub(4, 3, 1),
            isa.Addi(5, 4, -1),
            isa.Halt(),
        ]
        processor, _ = run_program(program)
        assert processor.registers[3] == 42
        assert processor.registers[4] == 36
        assert processor.registers[5] == 35

    def test_branching_loop(self):
        processor, _ = run_program(programs.busy_loop(10))
        assert processor.registers[programs.R_SUM] == 30

    def test_load_store_round_trip(self):
        def setup(machine):
            machine.poke(100, 55)

        program = [
            isa.Li(2, 100),
            isa.LoadR(3, 2),
            isa.Li(4, 200),
            isa.StoreR(3, 4),
            isa.Halt(),
        ]
        processor, machine = run_program(program, setup=setup)
        assert machine.peek(200) == 55

    def test_fetch_add_instruction(self):
        program = [
            isa.Li(2, 0),
            isa.Li(3, 5),
            isa.FaaR(4, 2, 3),
            isa.FaaR(5, 2, 3),
            isa.Halt(),
        ]
        processor, machine = run_program(program)
        assert machine.peek(0) == 10
        assert {processor.registers[4], processor.registers[5]} == {0, 5}

    def test_r0_reads_zero(self):
        program = [isa.Add(1, 0, 0), isa.Halt()]
        processor, _ = run_program(program)
        assert processor.registers[1] == 0

    def test_bez_branches_on_zero(self):
        program = [
            isa.Li(1, 0),
            isa.Bez(1, 4),  # taken: r1 == 0
            isa.Li(2, 111),  # skipped
            isa.Halt(),
            isa.Li(2, 222),  # 4: landing pad
            isa.Bez(2, 3),  # not taken: r2 == 222
            isa.Li(3, 333),
            isa.Halt(),
        ]
        processor, _ = run_program(program)
        assert processor.registers[2] == 222
        assert processor.registers[3] == 333

    def test_jump_is_unconditional(self):
        program = [
            isa.Jump(2),
            isa.Li(1, 111),  # skipped
            isa.Li(2, 5),  # 2
            isa.Halt(),
        ]
        processor, _ = run_program(program)
        assert processor.registers[1] == 0
        assert processor.registers[2] == 5

    def test_mov_copies(self):
        program = [isa.Li(1, 9), isa.Mov(2, 1), isa.Halt()]
        processor, _ = run_program(program)
        assert processor.registers[2] == 9


class TestRegisterLocking:
    def test_execution_continues_past_load(self):
        """The PE 'must continue execution of the instruction stream
        immediately after issuing a request': independent instructions
        after a load retire during the round trip."""
        program = [
            isa.Li(2, 100),
            isa.LoadR(3, 2),  # in flight...
            isa.Li(4, 1),  # ...these run without stalling
            isa.Li(5, 2),
            isa.Add(6, 4, 5),
            isa.Add(7, 3, 6),  # first use of r3: stalls here
            isa.Halt(),
        ]
        processor, _ = run_program(program)
        assert processor.registers[7] == 3  # 0 (memory) + 3
        assert processor.stats.stall_cycles > 0

    def test_use_of_locked_register_suspends(self):
        program = [
            isa.Li(2, 100),
            isa.LoadR(3, 2),
            isa.Add(4, 3, 3),  # immediate use: full stall
            isa.Halt(),
        ]
        processor, _ = run_program(program)
        # stall roughly the whole round trip (2 stages + mm + back)
        assert processor.stats.stall_cycles >= 4

    def test_software_pipelining_reduces_stalls(self):
        def setup(machine):
            for i in range(16):
                machine.poke(1000 + i, i + 1)

        dependent, _ = run_program(
            programs.dependent_chain_sum(1000, 16), setup=setup
        )
        pipelined, _ = run_program(
            programs.software_pipelined_sum(1000, 16), setup=setup
        )
        assert dependent.registers[programs.R_SUM] == sum(range(1, 17))
        assert pipelined.registers[programs.R_SUM] == sum(range(1, 17))
        assert pipelined.stats.stall_cycles < dependent.stats.stall_cycles

    def test_store_does_not_lock(self):
        processor, machine = run_program(programs.store_fill(500, 8, 9))
        assert machine.dump_region(500, 8) == [9] * 8
        assert processor.stats.stall_cycles == 0


class TestDriver:
    def test_done_waits_for_store_acks(self):
        program = [isa.Li(1, 7), isa.Li(2, 300), isa.StoreR(1, 2), isa.Halt()]
        machine = Ultracomputer(MachineConfig(n_pes=4))
        processor = Processor(0, program, machine.pnis[0])
        driver = ProcessorDriver()
        driver.add(processor)
        machine.attach_driver(driver)
        machine.run()
        assert processor.done()
        assert machine.peek(300) == 7

    def test_multiple_processors_share_memory(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        driver = ProcessorDriver()
        for pe in range(4):
            driver.add(
                Processor(pe, programs.fetch_add_loop(0, 5), machine.pnis[pe])
            )
        machine.attach_driver(driver)
        machine.run()
        assert machine.peek(0) == 20

    def test_producer_consumer_handshake(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        driver = ProcessorDriver()
        producer = [
            isa.Li(1, 1),
            isa.Li(2, 400),  # flag address
            isa.StoreR(1, 2),
            isa.Halt(),
        ]
        driver.add(Processor(0, producer, machine.pnis[0]))
        consumer = Processor(1, programs.spin_on_flag_then_halt(400), machine.pnis[1])
        driver.add(consumer)
        machine.attach_driver(driver)
        machine.run()
        assert consumer.halted
