"""Tests for hardware-multiprogrammed PEs (section 3.5)."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.pe.multiprogram import MultiprogrammedDriver


def make(n_pes=4, ways=2):
    machine = Ultracomputer(MachineConfig(n_pes=n_pes))
    driver = MultiprogrammedDriver(machine, ways=ways)
    machine.attach_driver(driver)
    return machine, driver


def counter_program(context_id, rounds):
    for _ in range(rounds):
        yield FetchAdd(0, 1)
    return context_id


class TestCorrectness:
    def test_contexts_share_the_machine_correctly(self):
        machine, driver = make(n_pes=4, ways=2)
        driver.spawn_everywhere(counter_program, 5)
        machine.run(500_000)
        assert machine.peek(0) == 4 * 2 * 5

    def test_context_ids_are_globally_unique(self):
        machine, driver = make(n_pes=2, ways=3)
        ids = driver.spawn_everywhere(counter_program, 1)
        assert sorted(ids) == list(range(6))
        machine.run(100_000)
        assert sorted(driver.return_values) == list(range(6))
        assert sorted(driver.return_values.values()) == list(range(6))

    def test_ways_limit_enforced(self):
        machine, driver = make(n_pes=2, ways=1)
        driver.spawn(0, counter_program, 1)
        with pytest.raises(ValueError, match="already runs"):
            driver.spawn(0, counter_program, 1)

    def test_distinct_results_per_context(self):
        """Two contexts on one PE interleave but never corrupt each
        other's state."""
        machine, driver = make(n_pes=2, ways=2)

        def program(context_id):
            base = 100 + context_id * 16
            for i in range(6):
                yield Store(base + i, context_id * 1000 + i)
            values = []
            for i in range(6):
                values.append((yield Load(base + i)))
            return values

        driver.spawn(0, program)
        driver.spawn(0, program)
        machine.run(500_000)
        for context_id, values in driver.return_values.items():
            assert values == [context_id * 1000 + i for i in range(6)]


class TestLatencyHiding:
    @staticmethod
    def _memory_bound(context_id, refs):
        # one dependent load after another: worst case for one thread
        total = 0
        for i in range(refs):
            total += yield Load(200 + (context_id * 64 + i * 7) % 256)
        return total

    def test_multiprogramming_raises_utilization(self):
        """The paper's claim: a second context soaks up the cycles the
        first spends waiting on memory."""
        utilizations = {}
        for ways in (1, 2, 4):
            machine, driver = make(n_pes=2, ways=ways)
            driver.spawn_everywhere(self._memory_bound, 12)
            machine.run(500_000)
            utilizations[ways] = driver.utilization()
        assert utilizations[2] > utilizations[1] * 1.3
        assert utilizations[4] >= utilizations[2]

    def test_k_fold_equivalent_to_k_pes(self):
        """'k-fold multiprogramming is equivalent to using k times as
        many PEs': total work completed per machine-cycle roughly
        doubles with ways=2 on a memory-bound workload."""
        cycles = {}
        for ways in (1, 2):
            machine, driver = make(n_pes=2, ways=ways)
            # fixed total work: 2 PEs * ways contexts * (24/ways) refs
            driver.spawn_everywhere(self._memory_bound, 24 // ways)
            machine.run(500_000)
            cycles[ways] = machine.cycle
        assert cycles[2] < cycles[1] * 0.75  # same work, much faster

    def test_stalled_context_uses_no_slot(self):
        machine, driver = make(n_pes=2, ways=2)

        def load_once(context_id):
            value = yield Load(0)
            return value

        def compute_lots(context_id):
            for _ in range(30):
                yield 1
            return True

        driver.spawn(0, load_once)
        driver.spawn(0, compute_lots)
        machine.run(100_000)
        # the compute context runs during the load's round trip, so the
        # PE idles almost never
        assert driver.total_idle_cycles <= 3
