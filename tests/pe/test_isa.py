"""Tests for the PE instruction set (section 3.5)."""

import pytest

from repro.pe import isa


class TestReadWriteSets:
    def test_alu_ops(self):
        add = isa.Add(rd=1, rs1=2, rs2=3)
        assert add.reads() == (2, 3)
        assert add.writes() == (1,)

    def test_load_reads_address_writes_dest(self):
        load = isa.LoadR(rd=4, ra=5)
        assert load.reads() == (5,)
        assert load.writes() == (4,)

    def test_store_reads_both(self):
        store = isa.StoreR(rs=1, ra=2)
        assert store.reads() == (1, 2)
        assert store.writes() == ()

    def test_fetch_add_reads_address_and_value(self):
        faa = isa.FaaR(rd=1, ra=2, rv=3)
        assert faa.reads() == (2, 3)
        assert faa.writes() == (1,)

    def test_branches_read_condition(self):
        assert isa.Bnz(rs=3, target=0).reads() == (3,)
        assert isa.Bez(rs=3, target=0).reads() == (3,)

    def test_control_flow_neutral(self):
        assert isa.Jump(target=0).reads() == ()
        assert isa.Halt().reads() == ()


class TestValidation:
    def test_valid_program_passes(self):
        isa.validate_program([isa.Li(1, 5), isa.Jump(0), isa.Halt()], 8)

    def test_register_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            isa.validate_program([isa.Li(9, 5)], 8)

    def test_r0_not_writable(self):
        with pytest.raises(ValueError, match="read-only"):
            isa.validate_program([isa.Li(0, 5)], 8)

    def test_branch_target_checked(self):
        with pytest.raises(ValueError, match="target"):
            isa.validate_program([isa.Bnz(1, 5)], 8)

    def test_error_reports_instruction_index(self):
        with pytest.raises(ValueError, match="instruction 1"):
            isa.validate_program([isa.Halt(), isa.Li(0, 1)], 8)
