"""Property-based tests for the assembler: random programs survive the
assemble -> disassemble -> assemble round trip unchanged."""

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.pe import isa
from repro.pe.assembler import assemble, disassemble

registers = st.integers(min_value=1, max_value=15)  # r0 is read-only
immediates = st.integers(min_value=-999, max_value=999)


@st.composite
def instructions(draw, program_length):
    kind = draw(
        st.sampled_from(
            ["li", "mov", "add", "sub", "mul", "addi", "load", "store",
             "faa", "bnz", "bez", "jump", "halt"]
        )
    )
    if kind == "li":
        return isa.Li(draw(registers), draw(immediates))
    if kind == "mov":
        return isa.Mov(draw(registers), draw(registers))
    if kind in ("add", "sub", "mul"):
        cls = {"add": isa.Add, "sub": isa.Sub, "mul": isa.Mul}[kind]
        return cls(draw(registers), draw(registers), draw(registers))
    if kind == "addi":
        return isa.Addi(draw(registers), draw(registers), draw(immediates))
    if kind == "load":
        return isa.LoadR(draw(registers), draw(registers))
    if kind == "store":
        return isa.StoreR(draw(registers), draw(registers))
    if kind == "faa":
        return isa.FaaR(draw(registers), draw(registers), draw(registers))
    target = draw(st.integers(0, program_length - 1))
    if kind == "bnz":
        return isa.Bnz(draw(registers), target)
    if kind == "bez":
        return isa.Bez(draw(registers), target)
    if kind == "jump":
        return isa.Jump(target)
    return isa.Halt()


@st.composite
def programs(draw):
    length = draw(st.integers(min_value=1, max_value=12))
    return [draw(instructions(length)) for _ in range(length)]


class TestRoundTripProperty:
    @settings(max_examples=80, deadline=None)
    @given(programs())
    def test_disassemble_reassemble_identity(self, program):
        text = disassemble(program)
        body = "\n".join(
            line.split(": ", 1)[1] for line in text.splitlines()
        )
        assert assemble(body) == program

    @settings(max_examples=40, deadline=None)
    @given(programs())
    def test_assembled_programs_validate(self, program):
        # the generator respects the ISA's constraints; validate_program
        # must agree (no false rejections)
        isa.validate_program(program, 16)
