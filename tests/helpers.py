"""Shared hypothesis strategies and helpers for the test suite."""

from __future__ import annotations

import hypothesis.strategies as st

from repro.core.memory_ops import (
    FetchAdd,
    FetchPhi,
    Load,
    PHI_OPERATORS,
    Store,
    Swap,
    TestAndSet,
)

addresses = st.integers(min_value=0, max_value=3)
values = st.integers(min_value=-100, max_value=100)


@st.composite
def operations(draw, address_strategy=addresses):
    """A random memory operation on a small address range."""
    address = draw(address_strategy)
    kind = draw(
        st.sampled_from(["load", "store", "faa", "swap", "tas", "fmax", "for"])
    )
    if kind == "load":
        return Load(address)
    if kind == "store":
        return Store(address, draw(values))
    if kind == "faa":
        return FetchAdd(address, draw(values))
    if kind == "swap":
        return Swap(address, draw(values))
    if kind == "tas":
        return TestAndSet(address)
    if kind == "fmax":
        return FetchPhi(address, draw(values), PHI_OPERATORS["max"])
    return FetchPhi(address, draw(st.integers(0, 7)), PHI_OPERATORS["or"])


@st.composite
def operation_batches(draw, max_size=5):
    """A small batch of simultaneous operations (same cycle)."""
    return draw(st.lists(operations(), min_size=1, max_size=max_size))


# ----------------------------------------------------------------------
# Prometheus text-format parsing (for the /metrics exposition tests)
# ----------------------------------------------------------------------
import re as _re

_PROM_LINE_RE = _re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_PROM_LABEL_RE = _re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_unescape(value):
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _prom_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text):
    """Minimal text-format 0.0.4 parser: returns (types, samples).

    ``types`` maps metric name -> declared type; ``samples`` maps
    ``(name, frozenset(labels.items()))`` -> float value.  Raises
    ``ValueError`` on any line that is neither a comment, blank, nor a
    well-formed sample — the exposition tests use this as the format
    validity check.
    """
    types = {}
    samples = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _PROM_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        name, labels_text, value = match.groups()
        labels = {}
        if labels_text:
            consumed = _PROM_LABEL_RE.sub("", labels_text)
            if consumed.strip(", "):
                raise ValueError(f"malformed labels in: {line!r}")
            for label_match in _PROM_LABEL_RE.finditer(labels_text):
                labels[label_match.group(1)] = _prom_unescape(
                    label_match.group(2)
                )
        samples[(name, frozenset(labels.items()))] = _prom_value(value)
    return types, samples
