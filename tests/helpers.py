"""Shared hypothesis strategies and helpers for the test suite."""

from __future__ import annotations

import hypothesis.strategies as st

from repro.core.memory_ops import (
    FetchAdd,
    FetchPhi,
    Load,
    PHI_OPERATORS,
    Store,
    Swap,
    TestAndSet,
)

addresses = st.integers(min_value=0, max_value=3)
values = st.integers(min_value=-100, max_value=100)


@st.composite
def operations(draw, address_strategy=addresses):
    """A random memory operation on a small address range."""
    address = draw(address_strategy)
    kind = draw(
        st.sampled_from(["load", "store", "faa", "swap", "tas", "fmax", "for"])
    )
    if kind == "load":
        return Load(address)
    if kind == "store":
        return Store(address, draw(values))
    if kind == "faa":
        return FetchAdd(address, draw(values))
    if kind == "swap":
        return Swap(address, draw(values))
    if kind == "tas":
        return TestAndSet(address)
    if kind == "fmax":
        return FetchPhi(address, draw(values), PHI_OPERATORS["max"])
    return FetchPhi(address, draw(st.integers(0, 7)), PHI_OPERATORS["or"])


@st.composite
def operation_batches(draw, max_size=5):
    """A small batch of simultaneous operations (same cycle)."""
    return draw(st.lists(operations(), min_size=1, max_size=max_size))
