"""Tests for the terminal reporting helpers."""

import pytest

from repro.reporting import (
    SCHEMA_VERSION,
    TIMELINE_PLOT_SERIES,
    Series,
    ascii_plot,
    figure7_ascii,
    format_table,
    json_envelope,
    timeline_ascii,
)


class TestAsciiPlot:
    def test_single_series_renders(self):
        plot = ascii_plot(
            [Series("line", [(0, 0), (1, 1), (2, 2)])], width=20, height=5
        )
        lines = plot.splitlines()
        assert any("o" in line for line in lines)
        assert any("+----" in line for line in lines)
        assert "o line" in plot

    def test_multiple_series_get_distinct_glyphs(self):
        plot = ascii_plot(
            [
                Series("a", [(0, 0), (1, 1)]),
                Series("b", [(0, 1), (1, 0)]),
            ],
            width=16,
            height=5,
        )
        assert "o a" in plot and "* b" in plot

    def test_y_max_clips(self):
        plot = ascii_plot(
            [Series("spike", [(0, 1), (1, 1000)])],
            width=16,
            height=5,
            y_max=10.0,
        )
        assert "10|" in plot  # the axis tops out at the clip

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([])
        with pytest.raises(ValueError):
            ascii_plot([Series("empty", [])])

    def test_axis_labels_present(self):
        plot = ascii_plot(
            [Series("s", [(0, 0), (1, 1)])],
            width=12,
            height=4,
            x_label="load",
            y_label="delay",
        )
        assert "x: load" in plot and "y: delay" in plot

    def test_figure7_ascii_has_all_designs(self):
        plot = figure7_ascii()
        for label in ("k=2 d=1", "k=4 d=2", "k=8 d=6"):
            assert label in plot

    def test_single_point_renders(self):
        # degenerate ranges (x_hi == x_lo, y_hi == y_lo) must not divide
        # by zero; the lone point lands on the grid
        plot = ascii_plot([Series("dot", [(1.0, 2.0)])], width=10, height=4)
        assert "o" in plot
        assert "o dot" in plot

    def test_non_finite_points_dropped(self):
        plot = ascii_plot(
            [Series("s", [(0, 0), (1, float("nan")), (2, 2),
                          (float("inf"), 3)])],
            width=16, height=5,
        )
        # the finite points still plot; the axis is not poisoned
        assert "nan" not in plot and "inf" not in plot
        assert "o s" in plot

    def test_all_non_finite_rejected(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            ascii_plot([Series("s", [(0, float("nan"))])])

    def test_series_that_loses_all_points_keeps_legend(self):
        plot = ascii_plot(
            [
                Series("good", [(0, 0), (1, 1)]),
                Series("bad", [(0, float("inf"))]),
            ],
            width=16, height=5,
        )
        assert "* bad" in plot  # in the legend, contributes no glyphs


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.25]],
        )
        lines = table.splitlines()
        assert lines[0].endswith("value")
        assert "1.50" in table and "22.25" in table
        # separator row present
        assert set(lines[1]) <= {"-", " "}

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_mismatched_row_width_rejected(self):
        with pytest.raises(ValueError, match="row 1 has 3 cells"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_non_finite_floats_rendered_literally(self):
        table = format_table(
            ["x"], [[float("nan")], [float("inf")]],
            float_format="{:.4f}",
        )
        assert "nan" in table and "inf" in table

    def test_single_cell(self):
        table = format_table(["only"], [[1.0]])
        assert "only" in table and "1.00" in table


class TestTimelineAscii:
    PAYLOAD = {
        "window": 100,
        "samples": [
            {"cycle": 100, "forward_packets": 4, "return_packets": 9,
             "wait_records": 1, "combines": 2, "requests_issued": 30,
             "replies": 28, "mm_utilization": 0.4},
            {"cycle": 200, "forward_packets": 6, "return_packets": 12,
             "wait_records": 0, "combines": 3, "requests_issued": 33,
             "replies": 31, "mm_utilization": 0.5},
        ],
    }

    def test_one_plot_per_series(self):
        out = timeline_ascii(self.PAYLOAD)
        for name in TIMELINE_PLOT_SERIES:
            assert f"-- {name} --" in out

    def test_series_subset(self):
        out = timeline_ascii(self.PAYLOAD, names=("combines",))
        assert "-- combines --" in out
        assert "forward_packets" not in out

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            timeline_ascii({"window": 100, "samples": []})


class TestJsonEnvelope:
    def test_minimal_envelope(self):
        envelope = json_envelope("demo", {"cycles": 12})
        assert envelope == {
            "schema_version": SCHEMA_VERSION,
            "command": "demo",
            "results": {"cycles": 12},
        }

    def test_spec_and_sweep_echoed(self):
        from repro.exp import figure7_spec, serial_runner

        spec = figure7_spec(n=4096)
        result = serial_runner().run(spec)
        envelope = json_envelope(
            "fig7", result.payloads, spec=spec, sweep=result
        )
        assert envelope["spec"]["experiment"] == "fig7.design_curve"
        assert envelope["sweep"]["spec_hash"] == spec.spec_hash()
        assert envelope["sweep"]["computed_points"] == spec.n_points

    def test_extra_keys_merge(self):
        envelope = json_envelope("demo", {}, extra={"final_counter": 32})
        assert envelope["final_counter"] == 32
