"""Tests for the terminal reporting helpers."""

import pytest

from repro.reporting import Series, ascii_plot, figure7_ascii, format_table


class TestAsciiPlot:
    def test_single_series_renders(self):
        plot = ascii_plot(
            [Series("line", [(0, 0), (1, 1), (2, 2)])], width=20, height=5
        )
        lines = plot.splitlines()
        assert any("o" in line for line in lines)
        assert any("+----" in line for line in lines)
        assert "o line" in plot

    def test_multiple_series_get_distinct_glyphs(self):
        plot = ascii_plot(
            [
                Series("a", [(0, 0), (1, 1)]),
                Series("b", [(0, 1), (1, 0)]),
            ],
            width=16,
            height=5,
        )
        assert "o a" in plot and "* b" in plot

    def test_y_max_clips(self):
        plot = ascii_plot(
            [Series("spike", [(0, 1), (1, 1000)])],
            width=16,
            height=5,
            y_max=10.0,
        )
        assert "10|" in plot  # the axis tops out at the clip

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([])
        with pytest.raises(ValueError):
            ascii_plot([Series("empty", [])])

    def test_axis_labels_present(self):
        plot = ascii_plot(
            [Series("s", [(0, 0), (1, 1)])],
            width=12,
            height=4,
            x_label="load",
            y_label="delay",
        )
        assert "x: load" in plot and "y: delay" in plot

    def test_figure7_ascii_has_all_designs(self):
        plot = figure7_ascii()
        for label in ("k=2 d=1", "k=4 d=2", "k=8 d=6"):
            assert label in plot


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.25]],
        )
        lines = table.splitlines()
        assert lines[0].endswith("value")
        assert "1.50" in table and "22.25" in table
        # separator row present
        assert set(lines[1]) <= {"-", " "}

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table
