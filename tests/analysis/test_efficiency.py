"""Tests for the TRED2 cost model and efficiency tables (section 5)."""

import math

import pytest

from repro.analysis.efficiency import (
    TABLE_MATRIX_SIZES,
    TABLE_PROCESSOR_COUNTS,
    Tred2CostModel,
    Tred2Sample,
    efficiency_table,
    fit_cost_model,
    format_efficiency_table,
    prediction_error,
)


def synthetic_samples(a=20.0, d=3.0, wn=50.0, wp=10.0):
    samples = []
    for p in (1, 2, 4, 8, 16):
        for n in (8, 16, 32):
            wait = (wn * n + wp * math.sqrt(p)) if p > 1 else 0.0
            total = a * n + d * n**3 / p + wait
            samples.append(
                Tred2Sample(
                    processors=p, matrix_size=n, total_time=total, waiting_time=wait
                )
            )
    return samples


class TestFitting:
    def test_fit_recovers_synthetic_constants(self):
        model = fit_cost_model(synthetic_samples())
        assert model.overhead == pytest.approx(20.0, rel=0.05)
        assert model.work == pytest.approx(3.0, rel=0.05)
        assert model.wait_n == pytest.approx(50.0, rel=0.05)
        assert model.wait_p == pytest.approx(10.0, rel=0.2)

    def test_fit_predicts_held_out_pairs(self):
        """The paper: held-out runs 'have always yielded results within
        1% of the predicted value' — exact here because the synthetic
        data is noiseless."""
        model = fit_cost_model(synthetic_samples())
        holdout = [
            Tred2Sample(
                processors=32,
                matrix_size=24,
                total_time=20 * 24 + 3 * 24**3 / 32 + 50 * 24 + 10 * math.sqrt(32),
                waiting_time=50 * 24 + 10 * math.sqrt(32),
            )
        ]
        assert prediction_error(model, holdout) < 0.01

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_model(synthetic_samples()[:2])


class TestModelShape:
    @pytest.fixture
    def model(self):
        return Tred2CostModel(overhead=20.0, work=3.0, wait_n=50.0, wait_p=10.0)

    def test_serial_time_has_no_waiting(self, model):
        assert model.waiting(1, 64) == 0.0

    def test_efficiency_bounded(self, model):
        for p in TABLE_PROCESSOR_COUNTS:
            for n in TABLE_MATRIX_SIZES:
                e = model.efficiency(p, n)
                assert 0.0 < e <= 1.0 + 1e-9

    def test_efficiency_increases_with_matrix_size(self, model):
        """Down each column of Table 2, efficiency rises with N."""
        for p in TABLE_PROCESSOR_COUNTS:
            values = [model.efficiency(p, n) for n in TABLE_MATRIX_SIZES]
            assert values == sorted(values)

    def test_efficiency_decreases_with_processors(self, model):
        """Across each row of Table 2, efficiency falls with P."""
        for n in TABLE_MATRIX_SIZES:
            values = [model.efficiency(p, n) for p in TABLE_PROCESSOR_COUNTS]
            assert values == sorted(values, reverse=True)

    def test_no_wait_projection_dominates(self, model):
        """Table 3 >= Table 2 pointwise ('all the waiting time can be
        recovered')."""
        with_wait = efficiency_table(model, include_waiting=True)
        without_wait = efficiency_table(model, include_waiting=False)
        for row_w, row_n in zip(with_wait, without_wait):
            for a, b in zip(row_w, row_n):
                assert b >= a

    def test_large_problems_reach_high_efficiency(self, model):
        """The bottom-left of Table 3: N >> P pushes efficiency to ~1."""
        assert model.efficiency(16, 1024, include_waiting=False) > 0.95


class TestFormatting:
    def test_format_matches_paper_layout(self):
        model = Tred2CostModel(overhead=20.0, work=3.0, wait_n=50.0, wait_p=10.0)
        table = efficiency_table(model, include_waiting=True)
        text = format_efficiency_table(table, measured={(16, 16)})
        lines = text.splitlines()
        assert "N\\PE" in lines[0]
        assert len(lines) == 2 + len(TABLE_MATRIX_SIZES)
        # measured entries unstarred, projections starred
        first_data_row = lines[2]
        assert "%*" in text
        assert first_data_row.startswith("    16")
