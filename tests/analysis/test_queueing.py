"""Tests for the analytic network model (section 4.1)."""

import math

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.analysis.queueing import (
    CapacityExceededError,
    capacity,
    network_transit_time,
    nonpipelined_bandwidth_bound,
    round_trip_time,
    saturation_intensity,
    stage_count,
    switch_delay,
    switch_queueing_delay,
    transit_breakdown,
)


class TestSwitchDelay:
    def test_zero_traffic_gives_pure_service(self):
        assert switch_delay(2, 2, 0.0) == 1.0

    def test_queueing_term_matches_formula(self):
        # delay = 1 + m^2 p (1 - 1/k) / (2 (1 - m p))
        k, m, p = 2, 2, 0.2
        expected = (m * m) * p * (1 - 1 / k) / (2 * (1 - m * p))
        assert switch_queueing_delay(k, m, p) == pytest.approx(expected)

    def test_diverges_at_capacity(self):
        assert switch_queueing_delay(2, 2, 0.499) > 40

    def test_capacity_error(self):
        with pytest.raises(CapacityExceededError):
            switch_delay(2, 2, 0.5)

    def test_copies_divide_load(self):
        single = switch_queueing_delay(4, 4, 0.2, d=1)
        double = switch_queueing_delay(4, 4, 0.2, d=2)
        assert double < single
        # d=2 at p equals d=1 at p/2
        assert double == pytest.approx(switch_queueing_delay(4, 4, 0.1, d=1))

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from([2, 4, 8]),
        st.floats(min_value=0.0, max_value=0.1),
        st.floats(min_value=0.001, max_value=0.01),
    )
    def test_monotone_in_traffic(self, k, p, dp):
        m = k
        assert switch_delay(k, m, p + dp) >= switch_delay(k, m, p)


class TestTransitTime:
    def test_paper_closed_form_with_m_equals_k(self):
        """T = (1 + k(k-1)p / 2(d - kp)) lg n / lg k + k - 1."""
        n, k, d, p = 4096, 4, 2, 0.15
        expected = (1 + k * (k - 1) * p / (2 * (d - k * p))) * (
            math.log2(n) / math.log2(k)
        ) + k - 1
        assert network_transit_time(n, k, k, p, d) == pytest.approx(expected)

    def test_unloaded_transit_is_stages_plus_pipe(self):
        assert network_transit_time(4096, 4, 4, 0.0, 1) == 6 + 3
        assert network_transit_time(1024, 2, 2, 0.0, 1) == 10 + 1

    def test_latency_logarithmic_in_n(self):
        # Net of the pipe-setting constant, transit scales with stages.
        m = 2
        t1 = network_transit_time(64, 2, m, 0.1) - (m - 1)
        t2 = network_transit_time(4096, 2, m, 0.1) - (m - 1)
        assert t2 / t1 == pytest.approx(2.0)  # 12 stages vs 6

    def test_stage_count_validation(self):
        with pytest.raises(ValueError):
            stage_count(100, 4)

    def test_round_trip_adds_memory(self):
        one_way = network_transit_time(64, 2, 2, 0.0)
        assert round_trip_time(64, 2, 2, 0.0, mm_latency=2) == 2 * one_way + 2

    def test_breakdown_totals(self):
        breakdown = transit_breakdown(4096, 4, 4, 0.2, 2)
        assert breakdown.total == pytest.approx(
            network_transit_time(4096, 4, 4, 0.2, 2)
        )
        assert breakdown.stages == 6
        assert breakdown.pipe_setting == 3


class TestCapacity:
    def test_capacity_value(self):
        assert capacity(4, 2) == 0.5
        assert capacity(8, 6) == 0.75

    def test_bandwidth_linear_in_n(self):
        """Design objective 1: total capacity = n * d/m messages/cycle
        grows linearly, unlike the non-pipelined O(n / log n) bound."""
        for n in (64, 256, 1024):
            total = n * capacity(2, 1)
            assert total == n / 2
            assert nonpipelined_bandwidth_bound(n, 2) < total

    def test_saturation_intensity_monotone_in_target(self):
        p_low = saturation_intensity(4, 4, 1, target_delay=10.0, n=4096)
        p_high = saturation_intensity(4, 4, 1, target_delay=20.0, n=4096)
        assert p_low <= p_high

    def test_saturation_inverse_of_transit(self):
        target = 15.0
        p = saturation_intensity(4, 4, 2, target, n=4096)
        assert network_transit_time(4096, 4, 4, p, 2) == pytest.approx(
            target, rel=1e-3
        )


class TestValidation:
    def test_negative_traffic(self):
        with pytest.raises(ValueError):
            switch_delay(2, 2, -0.1)

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            switch_delay(1, 1, 0.1)

    def test_bad_copies(self):
        with pytest.raises(ValueError):
            switch_delay(2, 2, 0.1, d=0)

    def test_m_squared_interpretation(self):
        """The paper's 'surprising m^2 factor': a switch with
        multiplexing m behaves like one with an m-times-longer cycle and
        m times the traffic per cycle."""
        k, p = 2, 0.05
        direct = switch_queueing_delay(k, 4, p)
        # one cycle 4x longer (delay scales by 4), traffic 4x per cycle
        rescaled = 4 * switch_queueing_delay(k, 1, 4 * p)
        assert direct == pytest.approx(rescaled)
