"""Tests for the packaging model — the section 3.6 numbers."""

import pytest

from repro.analysis.packaging import (
    ModulePartition,
    chip_budget,
    package_machine,
)


class TestPaper4KMachine:
    """Every number in section 3.6, computed rather than quoted."""

    @pytest.fixture
    def report(self):
        return package_machine(4096, switch_arity=4)

    def test_roughly_65000_chips(self, report):
        assert report.total_chips == 65536  # "roughly 65,000 chips"

    def test_network_fraction_19_percent(self, report):
        assert report.network_chip_fraction == pytest.approx(0.19, abs=0.005)

    def test_memory_chips_dominate(self, report):
        # "the chip count is still dominated ... by the memory chips"
        assert report.mm_chips > report.pe_chips
        assert report.mm_chips > report.network_chips

    def test_64_boards_each_side(self, report):
        assert report.pe_boards == 64
        assert report.mm_boards == 64

    def test_chips_per_board(self, report):
        # "each PE board containing 352 chips and each MM board
        # containing 672 chips"
        assert report.chips_per_pe_board == 352
        assert report.chips_per_mm_board == 672

    def test_six_stages_of_4x4(self, report):
        assert report.stages == 6
        assert report.switches_per_stage == 1024
        assert report.total_switches == 6144

    def test_board_chips_account_for_everything(self, report):
        total_on_boards = (
            report.pe_boards * report.chips_per_pe_board
            + report.mm_boards * report.chips_per_mm_board
        )
        assert total_on_boards == report.total_chips

    def test_summary_rows_printable(self, report):
        rows = dict(report.summary_rows())
        assert rows["total chips"] == 65536
        assert rows["PE boards"] == 64


class TestModulePartition:
    def test_4k_partition(self):
        partition = ModulePartition(4096)
        assert partition.modules == 64
        assert partition.inputs_per_module == 64
        # sqrt(N) (log N) / 4 = 64 * 12 / 4 = 192 switches (2x2)
        assert partition.switches_per_module == 192
        assert partition.stages_per_module == 6

    def test_partition_covers_whole_network(self):
        """Input + output racks together hold all (N/2) log N switches."""
        partition = ModulePartition(4096)
        assert partition.total_module_switches() == (4096 // 2) * 12

    def test_small_example(self):
        partition = ModulePartition(16)
        assert partition.modules == 4
        assert partition.switches_per_module == 4
        assert partition.total_module_switches() == 8 * 4

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            ModulePartition(8).modules


class TestParametricBudget:
    def test_budget_components_sum(self):
        budget = chip_budget(256)
        assert budget["total"] == budget["pe"] + budget["mm"] + budget["network"]

    def test_network_share_shrinks_slowly(self):
        """O(N log N) network vs O(N) endpoints: the network share grows
        with machine size — the cost pressure the paper flags."""
        small = chip_budget(256)
        large = chip_budget(4096)
        small_share = small["network"] / small["total"]
        large_share = large["network"] / large["total"]
        assert large_share > small_share

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            chip_budget(100)

    def test_package_requires_arity_4(self):
        with pytest.raises(ValueError, match="4x4"):
            package_machine(4096, switch_arity=2)
