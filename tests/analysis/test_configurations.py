"""Tests for the configuration space and the Figure 7 claims."""

import pytest

from repro.analysis.configurations import (
    FIGURE7_DESIGNS,
    NetworkDesign,
    best_design_at,
    crossover_intensity,
    equal_cost_designs,
    figure7_series,
)


class TestDesignArithmetic:
    def test_m_follows_bandwidth_constant(self):
        assert NetworkDesign(k=4, d=1).m == 4
        assert NetworkDesign(k=8, d=1, bandwidth_constant=2.0).m == 4

    def test_cost_factor(self):
        # C = d / (k lg k): the paper's equal-cost pair both at 0.25
        assert NetworkDesign(k=4, d=2).cost_factor == pytest.approx(0.25)
        assert NetworkDesign(k=8, d=6).cost_factor == pytest.approx(0.25)
        assert NetworkDesign(k=2, d=1).cost_factor == pytest.approx(0.5)

    def test_relative_bandwidth(self):
        # "the bandwidth of the first network is d/k = .5 and ... the
        # second is .75"
        assert NetworkDesign(k=4, d=2).relative_bandwidth == 0.5
        assert NetworkDesign(k=8, d=6).relative_bandwidth == 0.75

    def test_cost_scales_n_log_n(self):
        design = NetworkDesign(k=2, d=1)
        assert design.cost(4096) == pytest.approx(0.5 * 4096 * 12)

    def test_fractional_m_rejected(self):
        with pytest.raises(ValueError):
            NetworkDesign(k=2, d=1, bandwidth_constant=3.0).m


class TestFigure7Claims:
    def test_duplexed_4x4_best_at_reasonable_intensity(self):
        """'For reasonable traffic intensities a duplexed network
        composed of 4x4 switches yields the best performance.'"""
        best = best_design_at(0.10, n=4096)
        assert (best.k, best.d) == (4, 2)

    def test_8x8_d6_wins_at_high_intensity_among_equal_cost(self):
        """The d/k=.75 design is 'less heavily loaded' at high traffic:
        past the 4x4/d2 capacity region it dominates its equal-cost
        alternative (the paper's comparison is at fixed cost C=0.25)."""
        affordable = tuple(d for d in FIGURE7_DESIGNS if d.cost_factor <= 0.25)
        best = best_design_at(0.40, n=4096, designs=affordable)
        assert (best.k, best.d) == (8, 6)

    def test_equal_cost_pair_identified(self):
        pair = {(d.k, d.d) for d in equal_cost_designs(0.25)}
        assert pair == {(4, 2), (8, 6)}

    def test_series_within_capacity_only(self):
        series = figure7_series()
        for label, points in series.items():
            assert points, label
            ps = [p for p, _t in points]
            assert ps == sorted(ps)

    def test_curves_monotone_increasing(self):
        series = figure7_series()
        for label, points in series.items():
            times = [t for _p, t in points]
            assert all(b >= a for a, b in zip(times, times[1:])), label

    def test_crossover_between_equal_cost_designs(self):
        """4x4/d2 wins at low p; 8x8/d6 eventually catches up as p
        approaches 4x4's capacity — the crossover exists."""
        a = NetworkDesign(k=4, d=2)
        b = NetworkDesign(k=8, d=6)
        crossover = crossover_intensity(a, b, n=4096)
        assert crossover is not None
        assert 0.0 < crossover < a.capacity

    def test_low_intensity_ordering_matches_pipe_setting(self):
        """At p -> 0 transit is stages + m - 1: 2x2 (12+1=13) beats
        4x4 (6+3=9)? No — fewer stages win: check the actual ordering."""
        at_zero = {
            (d.k, d.d): d.transit_time(0.0, 4096) for d in FIGURE7_DESIGNS
        }
        assert at_zero[(4, 1)] == 9  # 6 stages + 3
        assert at_zero[(2, 1)] == 13  # 12 stages + 1
        assert at_zero[(8, 3)] == 11  # 4 stages + 7

    def test_no_design_for_impossible_intensity(self):
        with pytest.raises(ValueError):
            best_design_at(1.5, n=4096)
