"""Tests for TIR/TDR (paper appendix)."""

from repro.algorithms.counters import tdr, tir, unsafe_increment_if_below
from repro.core.paracomputer import Paracomputer


def run_programs(programs, seed=0, max_cycles=50_000, memory=None):
    para = Paracomputer(initial_memory=memory, seed=seed)
    for fn, args in programs:
        para.spawn(fn, *args)
    stats = para.run(max_cycles)
    return para, stats


def tir_program(pe_id, counter, delta, bound):
    ok = yield from tir(counter, delta, bound)
    return ok


def tdr_program(pe_id, counter, delta):
    ok = yield from tdr(counter, delta)
    return ok


class TestSemantics:
    def test_tir_succeeds_under_bound(self):
        para, stats = run_programs([(tir_program, (0, 1, 5))])
        assert stats.per_pe[0].return_value is True
        assert para.peek(0) == 1

    def test_tir_fails_at_bound(self):
        para, stats = run_programs(
            [(tir_program, (0, 1, 5))], memory={0: 5}
        )
        assert stats.per_pe[0].return_value is False
        assert para.peek(0) == 5  # unchanged

    def test_tdr_succeeds_when_positive(self):
        para, stats = run_programs([(tdr_program, (0, 2))], memory={0: 3})
        assert stats.per_pe[0].return_value is True
        assert para.peek(0) == 1

    def test_tdr_fails_at_zero(self):
        para, stats = run_programs([(tdr_program, (0, 1))])
        assert stats.per_pe[0].return_value is False
        assert para.peek(0) == 0

    def test_bad_delta_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            list(tir(0, 0, 5))
        with pytest.raises(ValueError):
            list(tdr(0, -1))


class TestConcurrentSafety:
    def test_exactly_bound_many_tirs_succeed(self):
        """32 concurrent TIR(+1, bound=10) from an empty counter: the
        counter must end exactly at 10 with exactly 10 winners."""
        para, stats = run_programs(
            [(tir_program, (0, 1, 10))] * 32, seed=3
        )
        winners = sum(1 for r in stats.per_pe.values() if r.return_value)
        assert winners == 10
        assert para.peek(0) == 10

    def test_tdr_never_overdraws(self):
        para, stats = run_programs(
            [(tdr_program, (0, 1))] * 32, seed=4, memory={0: 7}
        )
        winners = sum(1 for r in stats.per_pe.values() if r.return_value)
        assert winners == 7
        assert para.peek(0) == 0

    def test_counter_transiently_bounded_overshoot(self):
        """With the initial test present, overshoot beyond the bound is
        limited to the concurrent-attempt count, and the final value is
        exact.  (This is the point of the 'redundant' pre-test.)"""

        def repeat_tir(pe_id, counter, bound, attempts):
            wins = 0
            for _ in range(attempts):
                ok = yield from tir(counter, 1, bound)
                if ok:
                    wins += 1
            return wins

        para, stats = run_programs(
            [(repeat_tir, (0, 5, 20))] * 16, seed=5
        )
        total_wins = sum(r.return_value for r in stats.per_pe.values())
        assert total_wins == 5
        assert para.peek(0) == 5


class TestUnsafeVariantAblation:
    """The appendix: removing TIR's 'redundant' initial test 'permits
    unacceptable race conditions' — failed retries without the pre-test
    keep disturbing the counter, pushing it transiently far past the
    bound; with the pre-test, a counter already at its bound is never
    touched."""

    @staticmethod
    def _sampler(pe_id, counter, samples, duration, log):
        from repro.core.memory_ops import Load

        for _ in range(duration):
            value = yield Load(counter)
            log.append(value)
        return max(log)

    @staticmethod
    def _storm(variant):
        def hammer(pe_id, counter, bound, attempts):
            for _ in range(attempts):
                yield from variant(counter, 1, bound)
            return True

        return hammer

    def test_unsafe_retry_storm_overshoots_bound(self):
        log = []
        para = Paracomputer(initial_memory={0: 2}, seed=6)
        hammer = self._storm(unsafe_increment_if_below)
        for _ in range(16):
            para.spawn(hammer, 0, 2, 10)
        para.spawn(self._sampler, 0, None, 40, log)
        para.run(50_000)
        assert max(log) > 2  # the bound (2) was transiently violated
        assert para.peek(0) == 2  # though eventually restored

    def test_safe_variant_never_disturbs_full_counter(self):
        log = []
        para = Paracomputer(initial_memory={0: 2}, seed=6)
        hammer = self._storm(lambda c, d, b: tir(c, d, b))
        for _ in range(16):
            para.spawn(hammer, 0, 2, 10)
        para.spawn(self._sampler, 0, None, 40, log)
        para.run(50_000)
        assert max(log) == 2  # pre-test keeps every attempt hands-off
        assert para.peek(0) == 2
