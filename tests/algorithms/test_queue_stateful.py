"""Model-based (stateful) testing of the parallel queue.

Hypothesis drives random insert/delete sequences against the shared-
memory queue running on a paracomputer, checking every response against
a reference ``collections.deque``.  Sequential rules (one operation at a
time) — the concurrent behaviour is covered by the interleaving tests in
``test_queue.py``; this machine nails the *functional* specification:
FIFO order, exact overflow/underflow behaviour, and the occupancy
bounds.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.algorithms.queue import QueueLayout, delete, insert, occupancy_bounds
from repro.core.paracomputer import Paracomputer

CAPACITY = 4


class QueueModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.para = Paracomputer(seed=99)
        self.layout = QueueLayout(base=100, capacity=CAPACITY)
        self.reference: deque[int] = deque()
        self.counter = 0

    def _run(self, generator_fn, *args):
        """Execute one queue operation to completion on a fresh PE."""
        result_box = []

        def program(pe_id):
            result = yield from generator_fn(*args)
            result_box.append(result)
            return result

        self.para.spawn(program)
        self.para.run(50_000)
        return result_box[0]

    @rule()
    def do_insert(self):
        self.counter += 1
        value = self.counter
        ok = self._run(insert, self.layout, value)
        if len(self.reference) < CAPACITY:
            assert ok, "insert refused with space available"
            self.reference.append(value)
        else:
            assert not ok, "insert accepted into a full queue"

    @rule()
    def do_delete(self):
        item = self._run(delete, self.layout)
        if self.reference:
            expected = self.reference.popleft()
            assert item == expected, f"FIFO violated: {item} != {expected}"
        else:
            assert item is None, "delete produced an item from empty queue"

    @invariant()
    def bounds_track_occupancy(self):
        lower, upper = self._run(occupancy_bounds, self.layout)
        assert lower == upper == len(self.reference)


QueueModelTest = QueueModel.TestCase
QueueModelTest.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
