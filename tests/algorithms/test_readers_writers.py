"""Tests for the completely parallel readers–writers protocol (section 2.3)."""

from repro.algorithms.readers_writers import (
    RWLock,
    acquire_read,
    acquire_write,
    read_section,
    release_read,
    release_write,
    write_section,
)
from repro.core.memory_ops import FetchAdd, Load
from repro.core.paracomputer import Paracomputer

LOCK = RWLock(address=0, writer_weight=1 << 10)


class Monitor:
    """Host-side section tracker: verifies the exclusion invariants."""

    def __init__(self):
        self.readers = 0
        self.writers = 0
        self.max_concurrent_readers = 0
        self.violations = []

    def enter_read(self):
        self.readers += 1
        self.max_concurrent_readers = max(self.max_concurrent_readers, self.readers)
        if self.writers:
            self.violations.append("reader entered during write")

    def exit_read(self):
        self.readers -= 1

    def enter_write(self):
        self.writers += 1
        if self.writers > 1:
            self.violations.append("two writers")
        if self.readers:
            self.violations.append("writer entered during reads")

    def exit_write(self):
        self.writers -= 1


def reader(pe_id, lock, monitor, rounds):
    for _ in range(rounds):
        yield from acquire_read(lock)
        monitor.enter_read()
        yield 3  # read work
        monitor.exit_read()
        yield from release_read(lock)
    return True


def writer(pe_id, lock, monitor, rounds):
    for _ in range(rounds):
        yield from acquire_write(lock)
        monitor.enter_write()
        yield 3  # write work
        monitor.exit_write()
        yield from release_write(lock)
    return True


class TestExclusion:
    def test_mixed_load_respects_invariants(self):
        monitor = Monitor()
        para = Paracomputer(seed=8)
        for _ in range(10):
            para.spawn(reader, LOCK, monitor, 4)
        for _ in range(2):
            para.spawn(writer, LOCK, monitor, 3)
        para.run(200_000)
        assert monitor.violations == []
        assert para.peek(LOCK.address) == 0  # fully released

    def test_readers_overlap(self):
        """Reader concurrency is the whole point: with no writers, many
        readers must be in-section simultaneously."""
        monitor = Monitor()
        para = Paracomputer(seed=2)
        for _ in range(12):
            para.spawn(reader, LOCK, monitor, 2)
        para.run(50_000)
        assert monitor.violations == []
        assert monitor.max_concurrent_readers >= 8

    def test_writers_serialize(self):
        monitor = Monitor()
        para = Paracomputer(seed=5)
        for _ in range(4):
            para.spawn(writer, LOCK, monitor, 3)
        para.run(100_000)
        assert monitor.violations == []


class TestFastPath:
    def test_uncontended_reader_needs_no_retry(self):
        """'During periods when no writers are active, no serial code is
        executed': a reader's acquire is one fetch-and-add."""
        para = Paracomputer(seed=1)

        def probe(pe_id):
            retries = yield from acquire_read(LOCK)
            yield from release_read(LOCK)
            return retries

        para.spawn_many(16, probe)
        stats = para.run(5000)
        assert all(v == 0 for v in (r.return_value for r in stats.per_pe.values()))

    def test_reader_backs_off_during_write(self):
        para = Paracomputer(seed=3)
        monitor = Monitor()

        def long_writer(pe_id):
            yield from acquire_write(LOCK)
            monitor.enter_write()
            yield 30
            monitor.exit_write()
            yield from release_write(LOCK)
            return True

        def late_reader(pe_id):
            yield 5  # arrive while the writer holds the lock
            retries = yield from acquire_read(LOCK)
            monitor.enter_read()
            monitor.exit_read()
            yield from release_read(LOCK)
            return retries

        para.spawn(long_writer)
        para.spawn(late_reader)
        stats = para.run(20_000)
        assert monitor.violations == []
        assert stats.per_pe[1].return_value >= 1  # had to back off at least once


class TestSectionHelpers:
    def test_read_section_wraps(self):
        para = Paracomputer(seed=1)

        def body():
            value = yield Load(50)
            return value

        def program(pe_id):
            result = yield from read_section(LOCK, body())
            return result

        para.poke(50, 77)
        para.spawn(program)
        stats = para.run(5000)
        assert stats.per_pe[0].return_value == 77
        assert para.peek(LOCK.address) == 0

    def test_write_section_wraps(self):
        para = Paracomputer(seed=1)

        def body():
            yield FetchAdd(60, 5)
            return True

        def program(pe_id):
            yield from write_section(LOCK, body())
            return True

        para.spawn(program)
        para.run(5000)
        assert para.peek(60) == 5
        assert para.peek(LOCK.address) == 0
