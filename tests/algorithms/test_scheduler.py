"""Tests for the decentralized scheduler (section 2.3)."""

import pytest

from repro.algorithms.scheduler import (
    SchedulerLayout,
    make_fanout_workload,
    seed_direct,
    seed_tasks,
    worker,
)
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.paracomputer import Paracomputer


def run_worker(pe_id, layout, task_fn):
    trace = yield from worker(pe_id, layout, task_fn)
    return trace


class TestCorrectness:
    def test_every_task_runs_exactly_once(self):
        layout = SchedulerLayout.at(base=0, capacity=64)
        task_fn, roots, total = make_fanout_workload(3, 3)
        para = Paracomputer(seed=7)
        seed_direct(layout, roots, para.poke)
        para.spawn_many(8, run_worker, layout, task_fn)
        stats = para.run(500_000)
        executed = sorted(
            t for v in (r.return_value for r in stats.per_pe.values()) for t in v.executed
        )
        assert executed == list(range(total))

    def test_runs_on_the_real_machine(self):
        layout = SchedulerLayout.at(base=0, capacity=64)
        task_fn, roots, total = make_fanout_workload(2, 3)
        machine = Ultracomputer(MachineConfig(n_pes=4))
        seed_direct(layout, roots, machine.poke)
        machine.spawn_many(4, run_worker, layout, task_fn)
        machine.run(5_000_000)
        executed = sorted(
            t
            for v in machine.programs.return_values.values()
            for t in v.executed
        )
        assert executed == list(range(total))

    def test_no_pe_is_special(self):
        """Decentralization: with enough work, every PE executes some
        tasks — there is no coordinator."""
        layout = SchedulerLayout.at(base=0, capacity=256)
        task_fn, roots, total = make_fanout_workload(4, 3)
        para = Paracomputer(seed=3)
        seed_direct(layout, roots, para.poke)
        para.spawn_many(8, run_worker, layout, task_fn)
        stats = para.run(500_000)
        per_pe = [len(v.executed) for v in (r.return_value for r in stats.per_pe.values())]
        assert all(count > 0 for count in per_pe)
        assert sum(per_pe) == total

    def test_terminates_with_more_pes_than_tasks(self):
        layout = SchedulerLayout.at(base=0, capacity=16)
        para = Paracomputer(seed=5)
        seed_direct(layout, [0], para.poke)
        para.spawn_many(12, run_worker, layout, lambda task: (1, []))
        stats = para.run(100_000)
        assert all(r.finished for r in stats.per_pe.values())
        executed = [t for v in (r.return_value for r in stats.per_pe.values()) for t in v.executed]
        assert executed == [0]


class TestSeeding:
    def test_seed_tasks_from_running_pe(self):
        layout = SchedulerLayout.at(base=0, capacity=32)
        para = Paracomputer(seed=2)
        seed_direct(layout, [], para.poke)
        # keep workers from exiting before seeding: pending starts at 0,
        # so the seeder must run first — give it a one-task head start
        # by seeding directly, then adding more via seed_tasks.
        seed_direct(layout, [0], para.poke)

        def seeder_then_work(pe_id):
            yield from seed_tasks(layout, [1, 2, 3])
            trace = yield from worker(pe_id, layout, lambda t: (1, []))
            return trace

        para.spawn(seeder_then_work)
        stats = para.run(100_000)
        executed = sorted(stats.per_pe[0].return_value.executed)
        assert executed == [0, 1, 2, 3]

    def test_seed_direct_rejects_oversize(self):
        layout = SchedulerLayout.at(base=0, capacity=2)
        with pytest.raises(ValueError, match="capacity"):
            seed_direct(layout, [1, 2, 3], lambda a, v: None)


class TestFanoutWorkload:
    def test_tree_sizes(self):
        for fanout, depth in [(2, 3), (3, 2), (4, 1)]:
            _fn, roots, total = make_fanout_workload(fanout, depth)
            assert roots == [0]
            assert total == sum(fanout**level for level in range(depth + 1))

    def test_children_within_bounds(self):
        task_fn, _roots, total = make_fanout_workload(3, 3)
        seen = set()
        frontier = [0]
        while frontier:
            task = frontier.pop()
            assert task not in seen
            seen.add(task)
            _cycles, children = task_fn(task)
            frontier.extend(children)
        assert seen == set(range(total))
