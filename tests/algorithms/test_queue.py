"""Tests for the critical-section-free parallel queue (paper appendix)."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.algorithms.queue import (
    QueueLayout,
    QueueOverflow,
    QueueUnderflow,
    delete,
    delete_or_raise,
    insert,
    insert_or_raise,
    occupancy_bounds,
)
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.paracomputer import Paracomputer

QUEUE = QueueLayout(base=100, capacity=8)


def inserter(pe_id, queue, items, results):
    for item in items:
        ok = yield from insert(queue, item)
        results.append((item, ok))
    return True


def deleter(pe_id, queue, wanted, got):
    while len([g for g in got if g[0] == pe_id]) < wanted:
        item = yield from delete(queue)
        if item is not None:
            got.append((pe_id, item))
    return True


class TestSequential:
    def test_insert_then_delete(self):
        para = Paracomputer(seed=1)

        def program(pe_id):
            yield from insert(QUEUE, 42)
            yield from insert(QUEUE, 43)
            first = yield from delete(QUEUE)
            second = yield from delete(QUEUE)
            return (first, second)

        para.spawn(program)
        stats = para.run(5000)
        assert stats.per_pe[0].return_value == (42, 43)  # FIFO

    def test_underflow_returns_none(self):
        para = Paracomputer(seed=1)

        def program(pe_id):
            item = yield from delete(QUEUE)
            return item

        para.spawn(program)
        stats = para.run(5000)
        assert stats.per_pe[0].return_value is None

    def test_overflow_returns_false(self):
        para = Paracomputer(seed=1)

        def program(pe_id):
            outcomes = []
            for i in range(QUEUE.capacity + 2):
                ok = yield from insert(QUEUE, i)
                outcomes.append(ok)
            return outcomes

        para.spawn(program)
        stats = para.run(50_000)
        outcomes = stats.per_pe[0].return_value
        assert outcomes == [True] * QUEUE.capacity + [False, False]

    def test_wraparound_rounds(self):
        """The circular array reuses slots across rounds; the phase
        words keep rounds from colliding."""
        para = Paracomputer(seed=2)

        def program(pe_id):
            seen = []
            for round_number in range(4):
                for i in range(QUEUE.capacity):
                    yield from insert(QUEUE, round_number * 100 + i)
                for i in range(QUEUE.capacity):
                    seen.append((yield from delete(QUEUE)))
            return seen

        para.spawn(program)
        stats = para.run(100_000)
        expected = [r * 100 + i for r in range(4) for i in range(QUEUE.capacity)]
        assert stats.per_pe[0].return_value == expected

    def test_raising_helpers(self):
        para = Paracomputer(seed=1)

        def program(pe_id):
            try:
                yield from delete_or_raise(QUEUE)
            except QueueUnderflow:
                pass
            else:  # pragma: no cover
                raise AssertionError("expected underflow")
            yield from insert_or_raise(QUEUE, 5)
            return (yield from delete_or_raise(QUEUE))

        para.spawn(program)
        stats = para.run(5000)
        assert stats.per_pe[0].return_value == 5


class TestConcurrent:
    @pytest.mark.parametrize("machine_kind", ["paracomputer", "ultracomputer"])
    def test_no_items_lost_or_duplicated(self, machine_kind):
        queue = QueueLayout(base=100, capacity=16)
        produced = [list(range(pe * 100, pe * 100 + 12)) for pe in range(4)]
        results: list = []
        got: list = []

        if machine_kind == "paracomputer":
            machine = Paracomputer(seed=9)
        else:
            machine = Ultracomputer(MachineConfig(n_pes=8))
        for pe in range(4):
            machine.spawn(inserter, queue, produced[pe], results)
        for pe in range(4):
            machine.spawn(deleter, queue, 12, got)
        if machine_kind == "paracomputer":
            machine.run(200_000)
        else:
            machine.run(3_000_000)

        deleted = sorted(item for _, item in got)
        assert deleted == sorted(x for items in produced for x in items)

    def test_fifo_safety_property(self):
        """The appendix's FIFO formulation: if insert(p) completes
        before insert(q) starts, no delete yielding q completes before a
        delete yielding p starts.  We check it with timestamped
        histories from the paracomputer."""
        queue = QueueLayout(base=100, capacity=16)
        para = Paracomputer(seed=13)
        insert_windows: dict[int, tuple[int, int]] = {}
        delete_windows: dict[int, tuple[int, int]] = {}

        def timed_inserter(pe_id, items):
            for item in items:
                start = para.cycle
                ok = yield from insert(queue, item)
                assert ok
                insert_windows[item] = (start, para.cycle)
            return True

        def timed_deleter(pe_id, count):
            for _ in range(count):
                while True:
                    start = para.cycle
                    item = yield from delete(queue)
                    if item is not None:
                        delete_windows[item] = (start, para.cycle)
                        break
            return True

        for pe in range(4):
            para.spawn(timed_inserter, list(range(pe * 10, pe * 10 + 6)))
        for pe in range(4):
            para.spawn(timed_deleter, 6)
        para.run(300_000)

        items = list(insert_windows)
        for p in items:
            for q in items:
                if insert_windows[p][1] < insert_windows[q][0]:
                    # p fully inserted before q started inserting
                    assert not (
                        delete_windows[q][1] < delete_windows[p][0]
                    ), f"q={q} deleted entirely before p={p}'s delete began"

    def test_bounds_invariant_at_quiescence(self):
        queue = QueueLayout(base=100, capacity=8)
        para = Paracomputer(seed=4)

        def program(pe_id):
            for i in range(3):
                yield from insert(queue, i)
            lower, upper = yield from occupancy_bounds(queue)
            return (lower, upper)

        para.spawn(program)
        stats = para.run(10_000)
        assert stats.per_pe[0].return_value == (3, 3)

    def test_full_queue_insert_delete_churn(self):
        """Keep the queue at capacity while concurrent inserts and
        deletes churn — exercises the note that a 'full' queue may have
        usable cells mid-deletion."""
        queue = QueueLayout(base=100, capacity=4)
        para = Paracomputer(seed=21)
        got: list = []

        def retrying_inserter(pe_id, items):
            for item in items:
                while True:
                    ok = yield from insert(queue, item)
                    if ok:
                        break
            return True

        para.spawn(retrying_inserter, list(range(20)))
        para.spawn(deleter, queue, 16, got)
        para.run(400_000)
        assert len(got) == 16
        assert sorted(g for _, g in got) == list(range(16))  # FIFO order
