"""Tests for the fetch-and-add barrier."""

from repro.algorithms.barrier import Barrier, fuzzy_wait, wait
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.paracomputer import Paracomputer


class TestCorrectness:
    def test_no_pe_passes_early(self):
        """No participant may leave generation g until all have
        arrived: phase logs must be perfectly nested by round."""
        barrier = Barrier(base=0, participants=8)
        log: list[tuple[str, int, int]] = []
        para = Paracomputer(seed=3)

        def program(pe_id, rounds):
            for round_number in range(rounds):
                log.append(("arrive", round_number, pe_id))
                yield from wait(barrier)
                log.append(("leave", round_number, pe_id))
            return True

        para.spawn_many(8, program, 5)
        para.run(50_000)
        # every leave of round r must come after every arrive of round r
        last_arrive = {}
        first_leave = {}
        for position, (kind, round_number, _pe) in enumerate(log):
            if kind == "arrive":
                last_arrive[round_number] = position
            elif round_number not in first_leave:
                first_leave[round_number] = position
        for round_number in range(5):
            assert first_leave[round_number] > last_arrive[round_number]

    def test_ranks_are_distinct(self):
        barrier = Barrier(base=0, participants=8)
        para = Paracomputer(seed=5)

        def program(pe_id):
            rank = yield from wait(barrier)
            return rank

        para.spawn_many(8, program)
        stats = para.run(10_000)
        assert sorted(r.return_value for r in stats.per_pe.values()) == list(range(8))

    def test_reusable_across_many_generations(self):
        barrier = Barrier(base=0, participants=4)
        para = Paracomputer(seed=7)

        def program(pe_id):
            for _ in range(20):
                yield from wait(barrier)
            return True

        para.spawn_many(4, program)
        stats = para.run(100_000)
        assert all(r.finished for r in stats.per_pe.values())
        assert para.peek(barrier.sense) == 20

    def test_works_on_the_real_machine(self):
        barrier = Barrier(base=0, participants=8)
        machine = Ultracomputer(MachineConfig(n_pes=8))

        def program(pe_id):
            for _ in range(3):
                yield from wait(barrier)
            return True

        machine.spawn_many(8, program)
        machine.run(2_000_000)
        assert machine.peek(barrier.sense) == 3


class TestFuzzyBarrier:
    def test_work_runs_before_release(self):
        barrier = Barrier(base=0, participants=4)
        para = Paracomputer(seed=2)
        done_work: list[int] = []

        def local_work(pe_id):
            yield 5
            done_work.append(pe_id)

        def program(pe_id):
            yield from fuzzy_wait(barrier, local_work(pe_id))
            # at release time, everyone's overlapped work is complete
            assert len(done_work) == 4
            return True

        para.spawn_many(4, program)
        stats = para.run(20_000)
        assert all(r.finished for r in stats.per_pe.values())

    def test_fuzzy_overlaps_useful_work(self):
        """The fuzzy barrier hides the wait behind local computation:
        total time is barely more than the work itself."""
        def run(use_fuzzy):
            barrier = Barrier(base=0, participants=4)
            para = Paracomputer(seed=4)

            def work():
                yield 40

            def program(pe_id):
                if use_fuzzy:
                    yield from fuzzy_wait(barrier, work())
                else:
                    yield from work()
                    yield from wait(barrier)
                return True

            para.spawn_many(4, program)
            return para.run(50_000).cycles

        assert run(True) <= run(False) + 2
