"""Tests for semaphores and the spin-lock baseline."""

from repro.algorithms.semaphore import (
    Semaphore,
    SpinLock,
    acquire,
    lock,
    release,
    try_acquire,
    unlock,
)
from repro.core.paracomputer import Paracomputer


class TestCountingSemaphore:
    def test_try_acquire_when_available(self):
        para = Paracomputer(initial_memory={0: 3}, seed=1)
        sem = Semaphore(address=0)

        def program(pe_id):
            ok = yield from try_acquire(sem)
            return ok

        para.spawn(program)
        stats = para.run(5000)
        assert stats.per_pe[0].return_value is True
        assert para.peek(0) == 2

    def test_try_acquire_fails_empty(self):
        para = Paracomputer(seed=1)
        sem = Semaphore(address=0)

        def program(pe_id):
            ok = yield from try_acquire(sem)
            return ok

        para.spawn(program)
        stats = para.run(5000)
        assert stats.per_pe[0].return_value is False
        assert para.peek(0) == 0

    def test_capacity_respected_under_contention(self):
        """A 3-unit semaphore guarding a section: never more than three
        holders at once."""
        para = Paracomputer(initial_memory={0: 3}, seed=9)
        sem = Semaphore(address=0)
        holders = {"now": 0, "peak": 0}

        def program(pe_id):
            yield from acquire(sem)
            holders["now"] += 1
            holders["peak"] = max(holders["peak"], holders["now"])
            yield 5
            holders["now"] -= 1
            yield from release(sem)
            return True

        para.spawn_many(10, program)
        stats = para.run(100_000)
        assert all(r.finished for r in stats.per_pe.values())
        assert holders["peak"] <= 3
        assert para.peek(0) == 3

    def test_multi_unit_claims(self):
        para = Paracomputer(initial_memory={0: 5}, seed=2)
        sem = Semaphore(address=0)

        def program(pe_id):
            ok = yield from try_acquire(sem, units=4)
            return ok

        para.spawn_many(2, program)
        stats = para.run(10_000)
        outcomes = sorted((r.return_value for r in stats.per_pe.values()))
        assert outcomes == [False, True]  # only one 4-unit claim fits
        assert para.peek(0) == 1


class TestSpinLock:
    def test_mutual_exclusion(self):
        para = Paracomputer(seed=11)
        spin = SpinLock(address=0)
        section = {"inside": 0, "violations": 0, "entries": 0}

        def program(pe_id):
            for _ in range(3):
                yield from lock(spin)
                section["inside"] += 1
                section["entries"] += 1
                if section["inside"] > 1:
                    section["violations"] += 1
                yield 2
                section["inside"] -= 1
                yield from unlock(spin)
            return True

        para.spawn_many(6, program)
        stats = para.run(200_000)
        assert all(r.finished for r in stats.per_pe.values())
        assert section["violations"] == 0
        assert section["entries"] == 18
        assert para.peek(0) == 0

    def test_attempt_counting(self):
        para = Paracomputer(initial_memory={0: 1}, seed=3)
        spin = SpinLock(address=0)

        def contender(pe_id):
            attempts = yield from lock(spin)
            yield from unlock(spin)
            return attempts

        def releaser(pe_id):
            yield 10
            yield from unlock(spin)
            return 0

        para.spawn(contender)
        para.spawn(releaser)
        stats = para.run(10_000)
        assert stats.per_pe[0].return_value >= 1  # lock was initially held
