"""Tests for the fetch-and-add collectives (reduce/all-reduce/broadcast)."""

import pytest

from repro.algorithms.reduction import (
    Broadcast,
    Reduction,
    all_reduce,
    contribute,
    ordered_prefix,
    publish,
    receive,
    reset,
)
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.paracomputer import Paracomputer


class TestAllReduce:
    def test_every_pe_learns_the_total(self):
        para = Paracomputer(seed=4)
        reduction = Reduction(base=0, participants=8)

        def program(pe_id):
            total = yield from all_reduce(reduction, pe_id + 1)
            return total

        para.spawn_many(8, program)
        stats = para.run(20_000)
        assert all(v == 36 for v in (r.return_value for r in stats.per_pe.values()))

    def test_all_reduce_on_the_machine_combines(self):
        machine = Ultracomputer(MachineConfig(n_pes=8))
        reduction = Reduction(base=0, participants=8)

        def program(pe_id):
            total = yield from all_reduce(reduction, 2)
            return total

        machine.spawn_many(8, program)
        stats = machine.run()
        assert all(
            v == 16 for v in machine.programs.return_values.values()
        )
        assert stats.combines > 0

    def test_reusable_across_rounds(self):
        para = Paracomputer(seed=5)
        reduction = Reduction(base=0, participants=4)

        def program(pe_id):
            totals = []
            for round_number in range(3):
                total = yield from all_reduce(reduction, pe_id + round_number)
                totals.append(total)
                rank = pe_id  # fixed leader for the reset
                yield from reset(reduction, rank)
            return totals

        para.spawn_many(4, program)
        stats = para.run(100_000)
        for values in (r.return_value for r in stats.per_pe.values()):
            assert values == [6, 10, 14]  # sums of pe_id + r over pe_id


class TestOrderedPrefix:
    def test_prefixes_are_distinct_and_dense(self):
        para = Paracomputer(seed=7)

        def program(pe_id):
            prefix, after = yield from ordered_prefix(0, 1)
            return (prefix, after)

        para.spawn_many(16, program)
        stats = para.run(10_000)
        prefixes = sorted(v[0] for v in (r.return_value for r in stats.per_pe.values()))
        assert prefixes == list(range(16))
        for prefix, after in (r.return_value for r in stats.per_pe.values()):
            assert after == prefix + 1

    def test_weighted_prefix_sums(self):
        para = Paracomputer(seed=8)
        weights = [3, 5, 7, 11]

        def program(pe_id):
            prefix, _ = yield from ordered_prefix(0, weights[pe_id])
            return prefix

        para.spawn_many(4, program)
        stats = para.run(10_000)
        # the multiset of prefixes equals the prefix sums of SOME order
        from repro.core.serialization import fetch_add_outcome_valid

        results = [stats.per_pe[pe].return_value for pe in range(4)]
        assert fetch_add_outcome_valid(0, weights, results, para.peek(0))


class TestBroadcast:
    def test_subscribers_see_published_value(self):
        para = Paracomputer(seed=9)
        channel = Broadcast(base=50)

        def owner(pe_id):
            yield 5
            yield from publish(channel, 1234)
            return True

        def subscriber(pe_id):
            value, generation = yield from receive(channel, 0)
            return (value, generation)

        para.spawn(owner)
        para.spawn_many(6, lambda pe_id: subscriber(pe_id))
        stats = para.run(10_000)
        for pe in range(1, 7):
            assert stats.per_pe[pe].return_value == (1234, 1)

    def test_generations_distinguish_messages(self):
        para = Paracomputer(seed=10)
        channel = Broadcast(base=50)

        def owner(pe_id):
            yield from publish(channel, 111)
            yield 20
            yield from publish(channel, 222)
            return True

        def subscriber(pe_id):
            first, generation = yield from receive(channel, 0)
            second, _ = yield from receive(channel, generation)
            return (first, second)

        para.spawn(owner)
        para.spawn(subscriber)
        stats = para.run(20_000)
        assert stats.per_pe[1].return_value == (111, 222)

    def test_footprints(self):
        assert Broadcast(base=0).footprint == 2
        assert Reduction(base=0, participants=4).footprint == 3
