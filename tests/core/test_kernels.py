"""Unit tests for the simulation kernels and the component wake contract."""

from __future__ import annotations

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load
from repro.core.scheduler import KERNELS, DenseKernel, EventKernel, make_kernel
from repro.memory.module import MemoryModule
from repro.network.interfaces import MNI
from repro.network.message import Message
from repro.network.switch import Switch
from repro.network.topology import OmegaTopology


class TestSelection:
    def test_default_is_dense(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        assert isinstance(machine.kernel, DenseKernel)
        assert not isinstance(machine.kernel, EventKernel)
        assert machine.kernel.name == "dense"

    def test_event_selected_by_config(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, kernel="event"))
        assert isinstance(machine.kernel, EventKernel)
        assert machine.kernel.name == "event"

    def test_registry_contents(self):
        assert set(KERNELS) == {"batch", "dense", "event"}

    def test_unknown_kernel_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            Ultracomputer(MachineConfig(n_pes=4, kernel="sparse"))

    def test_make_kernel_rejects_unknown_name(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("warp", machine)


class TestWakeContract:
    def test_fresh_machine_components_idle(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        assert all(network.is_idle() for network in machine.networks)
        assert all(pni.is_idle() for pni in machine.pnis)
        assert all(mni.is_idle() for mni in machine.mnis)
        for network in machine.networks:
            for row in network.stages:
                for switch in row:
                    assert switch.is_idle()
        for module in machine.memory.modules:
            assert module.is_idle()

    def test_traffic_wakes_and_drain_sleeps(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, kernel="event"))

        def program(pe_id):
            yield Load(pe_id)

        machine.spawn_many(4, program)
        machine.step()  # tick 1 primes the generators (op now pending)
        machine.step()  # tick 2 issues the ops into the PNIs
        assert any(not pni.is_idle() for pni in machine.pnis)
        machine.run()
        assert all(network.is_idle() for network in machine.networks)
        assert all(pni.is_idle() for pni in machine.pnis)
        assert all(mni.is_idle() for mni in machine.mnis)

    def test_next_event_none_on_finished_machine(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, kernel="event"))

        def program(pe_id):
            yield Load(0)

        machine.spawn_many(4, program)
        machine.run()
        assert machine.kernel._next_event_cycle() is None

    def test_next_event_skips_compute_gap(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, kernel="event"))

        def program(pe_id):
            yield 50
            yield FetchAdd(0, 1)

        machine.spawn_many(4, program)
        machine.step()  # prime the generators (compute_remaining = 50)
        nxt = machine.kernel._next_event_cycle()
        # The interesting tick is the one whose decrement reaches zero.
        assert nxt == machine.cycle + 50 - 1


class TestStaleWakeAfterRefusedOffer:
    """The wake contract consulted *immediately* after a refused offer.

    A refused offer must leave the target component's idle/next-event
    answers exactly as they were before the offer: the event kernel
    reads them in the same tick, and any half-committed state would
    either lose the retry (sleeping past it) or spin forever."""

    @staticmethod
    def _request(mm, topo, tag):
        return Message(
            op=Load(0),
            mm=mm,
            offset=0,
            origin=0,
            tag=tag,
            digits=topo.route_digits(mm),
        )

    def test_switch_idle_state_unchanged_by_refusal(self):
        topo = OmegaTopology(8, 2)
        switch = Switch(2, stage=0, index=0, queue_capacity_packets=1)
        accepted = self._request(0b100, topo, tag=1)
        refused = self._request(0b110, topo, tag=2)
        assert switch.offer_forward(0, accepted, cycle=0)
        busy_before = not switch.is_idle()
        assert not switch.offer_forward(0, refused, cycle=0)
        # Still exactly one queued message: awake for the accepted one,
        # and nothing phantom queued for the refused one.
        assert not switch.is_idle()
        assert busy_before
        assert sum(len(q) for q in switch.to_mm) == 1

    def test_empty_switch_stays_idle_after_refusal(self):
        topo = OmegaTopology(8, 2)
        switch = Switch(2, stage=0, index=0, wait_buffer_capacity=0,
                        queue_capacity_packets=0)
        refused = self._request(0b100, topo, tag=1)
        assert switch.is_idle()
        assert not switch.offer_forward(0, refused, cycle=0)
        # The refusal must not have woken the switch: ticking it would
        # be a no-op, and the event kernel may legitimately skip it.
        assert switch.is_idle()

    def test_mni_refusal_leaves_idle_and_no_event(self):
        module = MemoryModule(0)
        mni = MNI(module, inbound_capacity_packets=0)
        topo = OmegaTopology(8, 2)
        refused = self._request(0, topo, tag=7)
        assert mni.is_idle()
        assert not mni.offer_inbound(refused, cycle=3)
        assert mni.is_idle()
        assert mni.next_event_cycle(3) is None


class TestRunCyclesParity:
    def test_event_run_cycles_lands_on_exact_cycle(self):
        for kernel in ("dense", "event"):
            machine = Ultracomputer(MachineConfig(n_pes=4, kernel=kernel))

            def program(pe_id):
                yield 30
                yield FetchAdd(0, 1)

            machine.spawn_many(4, program)
            machine.run_cycles(10)
            assert machine.cycle == 10
            machine.run_cycles(7)
            assert machine.cycle == 17

    def test_single_step_never_fast_forwards(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, kernel="event"))

        def program(pe_id):
            yield 100
            yield FetchAdd(0, 1)

        machine.spawn_many(4, program)
        for expected in range(1, 6):
            machine.step()
            assert machine.cycle == expected
