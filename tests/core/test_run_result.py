"""Tests for the RunResult API: real fields, removed aliases, export."""

import json

import pytest

from repro import FetchAdd, MachineConfig, Paracomputer, RunResult, Ultracomputer
from repro.core.results import PEResult


def _hot_spot_result(pes=8, rounds=4, **config):
    machine = Ultracomputer(MachineConfig(n_pes=pes, **config))

    def program(pe_id):
        value = 0
        for _ in range(rounds):
            value = yield FetchAdd(0, 1)
        return value

    machine.spawn_many(pes, program)
    return machine.run()


class TestFields:
    def test_core_fields_populated(self):
        result = _hot_spot_result()
        assert result.cycles > 0
        assert result.requests_issued == 32
        assert result.memory_accesses > 0
        assert result.combines > 0
        assert result.mean_round_trip > 0
        assert set(result.per_pe) == set(range(8))
        assert all(isinstance(r, PEResult) for r in result.per_pe.values())

    def test_metrics_empty_without_instrumentation(self):
        result = _hot_spot_result()
        assert len(result.metrics) == 0
        assert result.trace is None

    def test_paracomputer_returns_run_result(self):
        para = Paracomputer()

        def program(pe_id):
            yield FetchAdd(0, 1)

        para.spawn_many(4, program)
        result = para.run()
        assert isinstance(result, RunResult)
        assert result.requests_issued == 4
        assert result.combines == 0
        assert result.mean_round_trip == 1.0


class TestRemovedAliases:
    """The pre-1.1 names completed their deprecation cycle in 1.2.

    They spent the promised one-minor-version window as
    DeprecationWarning shims; the API redesign removed them, so any
    leftover use must now fail loudly rather than silently resolve.
    """

    @pytest.mark.parametrize(
        "alias",
        ["ops_issued", "pes", "finish_times", "return_values", "all_finished"],
    )
    def test_removed_attribute_raises(self, alias):
        result = _hot_spot_result()
        with pytest.raises(AttributeError):
            getattr(result, alias)

    def test_type_aliases_removed(self):
        import repro.core
        import repro.core.results

        for module in (repro.core, repro.core.results):
            for name in ("MachineStats", "ParacomputerStats"):
                assert not hasattr(module, name)

    def test_combining_rate_is_supported(self, recwarn):
        result = _hot_spot_result()
        rate = result.combining_rate
        assert 0.0 < rate < 1.0
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )


class TestExport:
    def test_to_dict_shape(self):
        result = _hot_spot_result(instrument=True)
        out = result.to_dict()
        for key in ("cycles", "requests_issued", "combines", "memory_accesses",
                    "mean_round_trip", "per_pe", "metrics"):
            assert key in out
        assert isinstance(out["metrics"], list)
        assert out["per_pe"][0]["finished"] is True

    def test_to_json_is_valid(self):
        result = _hot_spot_result(instrument=True)
        restored = json.loads(result.to_json())
        assert restored["requests_issued"] == 32

    def test_trace_included_when_enabled(self):
        result = _hot_spot_result(instrument=True, trace_capacity=64)
        out = result.to_dict()
        assert "trace" in out
        assert all("cycle" in event for event in out["trace"])
