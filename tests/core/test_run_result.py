"""Tests for the RunResult API: real fields, deprecated shims, export."""

import json

import pytest

from repro import FetchAdd, MachineConfig, Paracomputer, RunResult, Ultracomputer
from repro.core.results import PEResult


def _hot_spot_result(pes=8, rounds=4, **config):
    machine = Ultracomputer(MachineConfig(n_pes=pes, **config))

    def program(pe_id):
        value = 0
        for _ in range(rounds):
            value = yield FetchAdd(0, 1)
        return value

    machine.spawn_many(pes, program)
    return machine.run()


class TestFields:
    def test_core_fields_populated(self):
        result = _hot_spot_result()
        assert result.cycles > 0
        assert result.requests_issued == 32
        assert result.memory_accesses > 0
        assert result.combines > 0
        assert result.mean_round_trip > 0
        assert set(result.per_pe) == set(range(8))
        assert all(isinstance(r, PEResult) for r in result.per_pe.values())

    def test_metrics_empty_without_instrumentation(self):
        result = _hot_spot_result()
        assert len(result.metrics) == 0
        assert result.trace is None

    def test_paracomputer_returns_run_result(self):
        para = Paracomputer()

        def program(pe_id):
            yield FetchAdd(0, 1)

        para.spawn_many(4, program)
        result = para.run()
        assert isinstance(result, RunResult)
        assert result.requests_issued == 4
        assert result.combines == 0
        assert result.mean_round_trip == 1.0


class TestDeprecatedShims:
    def test_ops_issued_warns_and_maps(self):
        result = _hot_spot_result()
        with pytest.warns(DeprecationWarning, match="requests_issued"):
            assert result.ops_issued == result.requests_issued

    def test_pes_warns_and_maps(self):
        result = _hot_spot_result()
        with pytest.warns(DeprecationWarning, match="per_pe"):
            assert result.pes == len(result.per_pe)

    def test_finish_times_warns_and_maps(self):
        result = _hot_spot_result()
        with pytest.warns(DeprecationWarning):
            times = result.finish_times
        assert times == {
            pe: r.finished_cycle for pe, r in result.per_pe.items()
        }

    def test_return_values_warns_and_maps(self):
        result = _hot_spot_result()
        with pytest.warns(DeprecationWarning):
            values = result.return_values
        assert len(values) == 8
        # fetch-and-add returns the pre-increment value: tickets 0..31
        assert sorted(values.values())[-1] == 31

    def test_all_finished_warns(self):
        result = _hot_spot_result()
        with pytest.warns(DeprecationWarning):
            assert result.all_finished

    @pytest.mark.parametrize(
        ("alias", "mirror"),
        [
            ("ops_issued", lambda r: r.requests_issued),
            ("pes", lambda r: len(r.per_pe)),
            (
                "finish_times",
                lambda r: {pe: p.finished_cycle for pe, p in r.per_pe.items()},
            ),
            (
                "return_values",
                lambda r: {pe: p.return_value for pe, p in r.per_pe.items()},
            ),
            (
                "all_finished",
                lambda r: all(p.finished for p in r.per_pe.values()),
            ),
        ],
    )
    def test_every_alias_warns_and_mirrors(self, alias, mirror):
        """Each deprecated alias must (a) emit DeprecationWarning naming
        itself and (b) return exactly what the new API returns."""
        result = _hot_spot_result()
        with pytest.warns(DeprecationWarning, match=alias):
            value = getattr(result, alias)
        assert value == mirror(result)

    def test_combining_rate_is_supported(self, recwarn):
        result = _hot_spot_result()
        rate = result.combining_rate
        assert 0.0 < rate < 1.0
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )


class TestExport:
    def test_to_dict_shape(self):
        result = _hot_spot_result(instrument=True)
        out = result.to_dict()
        for key in ("cycles", "requests_issued", "combines", "memory_accesses",
                    "mean_round_trip", "per_pe", "metrics"):
            assert key in out
        assert isinstance(out["metrics"], list)
        assert out["per_pe"][0]["finished"] is True

    def test_to_json_is_valid(self):
        result = _hot_spot_result(instrument=True)
        restored = json.loads(result.to_json())
        assert restored["requests_issued"] == 32

    def test_trace_included_when_enabled(self):
        result = _hot_spot_result(instrument=True, trace_capacity=64)
        out = result.to_dict()
        assert "trace" in out
        assert all("cycle" in event for event in out["trace"])
