"""Tests for pairwise combining (sections 3.1.2–3.1.3).

The central property: the memory effect plus the two delivered replies
of a combined pair must equal the effect of the two requests in *some*
serial order — the serialization principle applied to a single switch.
Checked exhaustively for the paper's named rules and by hypothesis over
the whole operation algebra.
"""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.combining import combined_effect, decombine, try_combine
from repro.core.memory_ops import (
    FetchAdd,
    FetchPhi,
    Load,
    PHI_OPERATORS,
    Store,
    Swap,
    TestAndSet,
)
from repro.core.serialization import BatchOutcome, is_serializable

from helpers import operations, values


def assert_combined_is_serializable(old, new, initial=10):
    """The workhorse assertion: combine, apply, decombine, then check
    the observable outcome against the two-op serialization space."""
    combined = try_combine(old, new)
    assert combined is not None, f"expected {old} + {new} to combine"
    effect, old_reply, new_reply = combined_effect(old, new, combined, initial)
    observed = BatchOutcome(
        results=(old_reply, new_reply), final={old.address: effect.new_value}
    )
    assert is_serializable(
        {old.address: initial}, [old, new], observed
    ), f"{old} + {new}: outcome {observed} matches no serial order"


class TestPaperRules:
    """The six named rules, with the paper's exact behaviours."""

    def test_load_load_forwards_one_load(self):
        combined = try_combine(Load(0), Load(0))
        assert isinstance(combined.forward, Load)
        assert decombine(combined, 42) == (42, 42)

    def test_load_store_forwards_store_and_satisfies_load(self):
        # "Forward the store and return its value to satisfy the load."
        combined = try_combine(Load(0), Store(0, 9))
        assert isinstance(combined.forward, Store)
        assert combined.forward.value == 9
        old_reply, new_reply = decombine(combined, None)
        assert old_reply == 9  # the load gets the stored value
        assert new_reply is None  # the store gets a bare ack

    def test_store_store_keeps_one(self):
        # "Forward either store and ignore the other" — we realize
        # old-then-new, so the surviving datum is the new store's.
        combined = try_combine(Store(0, 3), Store(0, 8))
        assert isinstance(combined.forward, Store)
        assert combined.forward.value == 8
        assert decombine(combined, None) == (None, None)

    def test_fetch_add_pair_matches_figure3(self):
        # Figure 3: F&A(X,e) + F&A(X,f) -> F&A(X,e+f); on reply Y the
        # switch returns Y and Y+e.
        e, f = 5, 11
        combined = try_combine(FetchAdd(0, e), FetchAdd(0, f))
        assert isinstance(combined.forward, FetchAdd)
        assert combined.forward.increment == e + f
        y = 100
        assert decombine(combined, y) == (y, y + e)

    def test_fetch_add_load_treats_load_as_zero_add(self):
        # "FetchAdd-Load. Treat Load(X) as FetchAdd(X, 0)."
        combined = try_combine(FetchAdd(0, 7), Load(0))
        assert isinstance(combined.forward, FetchAdd)
        assert combined.forward.increment == 7
        assert decombine(combined, 50) == (50, 57)

    def test_load_fetch_add(self):
        combined = try_combine(Load(0), FetchAdd(0, 7))
        assert combined.forward.expects_value
        old_reply, new_reply = decombine(combined, 50)
        assert old_reply == 50
        assert new_reply == 50  # F&A serialized after the load sees Y

    def test_fetch_add_store_returns_stored_value(self):
        # "FetchAdd(X,e)-Store(X,f): transmit Store(e+f) and satisfy the
        # fetch-and-add by returning f."
        e, f = 4, 9
        combined = try_combine(FetchAdd(0, e), Store(0, f))
        assert isinstance(combined.forward, Store)
        assert combined.forward.value == e + f
        old_reply, new_reply = decombine(combined, None)
        assert old_reply == f
        assert new_reply is None

    def test_store_fetch_add(self):
        combined = try_combine(Store(0, 9), FetchAdd(0, 4))
        assert isinstance(combined.forward, Store)
        assert combined.forward.value == 13
        old_reply, new_reply = decombine(combined, None)
        assert old_reply is None
        assert new_reply == 9  # F&A sees the stored value

    def test_swap_swap(self):
        combined = try_combine(Swap(0, 3), Swap(0, 8))
        assert combined.forward.carries_data
        old_reply, new_reply = decombine(combined, 77)
        assert old_reply == 77  # pre-batch value
        assert new_reply == 3  # the first swap's datum

    def test_test_and_set_pair(self):
        combined = try_combine(TestAndSet(0), TestAndSet(0))
        old_reply, new_reply = decombine(combined, 0)
        assert old_reply == 0
        assert new_reply == 1  # sees the first TAS's effect


class TestNonCombinable:
    def test_different_addresses(self):
        assert try_combine(Load(0), Load(1)) is None

    def test_different_nontrivial_phis(self):
        faa = FetchAdd(0, 1)
        fmax = FetchPhi(0, 5, PHI_OPERATORS["max"])
        assert try_combine(faa, fmax) is None
        assert try_combine(fmax, faa) is None

    def test_fetch_max_pair_combines(self):
        a = FetchPhi(0, 5, PHI_OPERATORS["max"])
        b = FetchPhi(0, 9, PHI_OPERATORS["max"])
        combined = try_combine(a, b)
        assert combined is not None
        assert combined.forward.operand == 9
        old_reply, new_reply = decombine(combined, 7)
        assert old_reply == 7
        assert new_reply == 7  # max(7, 5)


class TestSerializationProperty:
    """Every combinable pair's outcome equals some serial order."""

    CASES = [
        (Load(0), Load(0)),
        (Load(0), Store(0, 9)),
        (Store(0, 9), Load(0)),
        (Store(0, 3), Store(0, 8)),
        (FetchAdd(0, 5), FetchAdd(0, 11)),
        (FetchAdd(0, 7), Load(0)),
        (Load(0), FetchAdd(0, 7)),
        (FetchAdd(0, 4), Store(0, 9)),
        (Store(0, 9), FetchAdd(0, 4)),
        (Swap(0, 3), Swap(0, 8)),
        (Swap(0, 3), Load(0)),
        (Load(0), Swap(0, 8)),
        (Swap(0, 6), Store(0, 2)),
        (Store(0, 2), Swap(0, 6)),
        (TestAndSet(0), TestAndSet(0)),
        (TestAndSet(0), Load(0)),
        (Load(0), TestAndSet(0)),
        (TestAndSet(0), Store(0, 4)),
        (FetchPhi(0, 5, PHI_OPERATORS["max"]), FetchPhi(0, 9, PHI_OPERATORS["max"])),
        (FetchPhi(0, 5, PHI_OPERATORS["min"]), FetchPhi(0, 9, PHI_OPERATORS["min"])),
        (FetchPhi(0, 5, PHI_OPERATORS["xor"]), FetchPhi(0, 9, PHI_OPERATORS["xor"])),
    ]

    @pytest.mark.parametrize("old,new", CASES, ids=lambda op: repr(op))
    @pytest.mark.parametrize("initial", [0, 10, -5])
    def test_named_pairs(self, old, new, initial):
        assert_combined_is_serializable(old, new, initial)

    @settings(max_examples=300, deadline=None)
    @given(
        operations(st.just(0)),
        operations(st.just(0)),
        st.integers(-20, 20),
    )
    def test_random_pairs(self, old, new, initial):
        combined = try_combine(old, new)
        if combined is None:
            return  # not combining is always safe
        assert_combined_is_serializable(old, new, initial)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(-20, 20), st.data())
    def test_chained_combining_preserves_totals(self, initial, data):
        """A tree of pairwise F&A combines is one big F&A whose replies
        are distinct prefix sums — the 'thousands of F&As in the time of
        one access' property."""
        incs = data.draw(st.lists(values, min_size=2, max_size=6))
        ops = [FetchAdd(0, e) for e in incs]
        # left fold: combine pairwise like successive queue arrivals
        current = ops[0]
        plans = []
        for op in ops[1:]:
            plan = try_combine(current, op)
            assert plan is not None
            plans.append(plan)
            current = plan.forward
        assert isinstance(current, FetchAdd)
        assert current.increment == sum(incs)
        # decombine outward: replies unwind in reverse
        reply = initial
        replies = []
        for plan in reversed(plans):
            old_reply, new_reply = decombine(plan, reply)
            replies.append(new_reply)
            reply = old_reply
        replies.append(reply)
        # the multiset of replies must be prefix sums of some ordering —
        # here the fold order itself: initial, +e0, +e0+e1, ...
        prefix = [initial]
        for e in incs[:-1]:
            prefix.append(prefix[-1] + e)
        assert sorted(replies) == sorted(prefix)
