"""Unit and property tests for the batch kernel's array state.

The batch kernel mirrors each network copy's schedulable state (queue
lengths, link busy-until times) into numpy arrays and maintains them
incrementally as messages move.  The switch objects stay authoritative,
so the correctness condition is a round-trip: after any number of
executed cycles, the incrementally-maintained arrays must equal a
mirror rebuilt from scratch off the objects (``_CopyState.resync``).
Hypothesis drives machines through varied sizes, workloads, and seeds
and checks the round-trip at an arbitrary cut point.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store


def _program(pe_id, rounds, seed):
    rng = random.Random((seed << 16) | pe_id)
    acc = 0
    for i in range(rounds):
        yield rng.randrange(1, 20)
        choice = rng.randrange(3)
        if choice == 0:
            acc += yield FetchAdd(0, 1)
        elif choice == 1:
            yield Store(64 + pe_id * 4 + (i % 4), acc)
        else:
            acc += yield Load(64 + pe_id * 4 + (i % 4))
    return acc


def _mirror_states(machine):
    """The kernel's per-copy array mirrors (forces state construction)."""
    kernel = machine.kernel
    kernel._ensure_state()
    return kernel._states


def _assert_mirror_matches_rebuild(state) -> None:
    incremental = state.export_state()
    state.resync()
    rebuilt = state.export_state()
    for field in ("fwd_len", "ret_len", "fwd_busy", "ret_busy"):
        for stage, (inc, reb) in enumerate(
            zip(incremental[field], rebuilt[field])
        ):
            assert (inc == reb).all(), (
                f"{field}[{stage}] diverged from the object state"
            )
    assert incremental["fwd_tot"] == rebuilt["fwd_tot"]
    assert incremental["ret_tot"] == rebuilt["ret_tot"]


class TestStateRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        n_pes=st.sampled_from([4, 16]),
        seed=st.integers(min_value=0, max_value=2**16),
        cycles=st.integers(min_value=0, max_value=120),
        copies=st.sampled_from([1, 2]),
    )
    def test_arrays_match_objects_at_any_cut(self, n_pes, seed, cycles, copies):
        machine = Ultracomputer(
            MachineConfig(n_pes=n_pes, kernel="batch", copies=copies)
        )
        machine.spawn_many(n_pes, _program, 4, seed)
        for _ in range(cycles):
            machine.step()
        for state in _mirror_states(machine):
            _assert_mirror_matches_rebuild(state)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        queue_capacity=st.sampled_from([4, 6]),
    )
    def test_round_trip_with_finite_queues(self, seed, queue_capacity):
        """Back-pressure exercises the refusal paths (blocked offers must
        leave the arrays untouched, accepted ones must land exactly)."""
        machine = Ultracomputer(
            MachineConfig(
                n_pes=16,
                kernel="batch",
                queue_capacity_packets=queue_capacity,
                max_outstanding=2,
            )
        )
        machine.spawn_many(16, _program, 4, seed)
        for _ in range(80):
            machine.step()
        for state in _mirror_states(machine):
            _assert_mirror_matches_rebuild(state)

    def test_arrays_empty_after_quiescent_run(self):
        machine = Ultracomputer(MachineConfig(n_pes=16, kernel="batch"))
        machine.spawn_many(16, _program, 4, 7)
        machine.run()
        for state in _mirror_states(machine):
            assert not state.has_messages()
            _assert_mirror_matches_rebuild(state)


class TestConstruction:
    def test_registry_builds_batch_kernel(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, kernel="batch"))
        assert machine.kernel.name == "batch"

    def test_results_match_dense_after_interleaved_steps(self):
        """Mixing step()/run_cycles()/run() must stay bit-identical —
        the kernel flushes its array counters at every public boundary."""
        outcomes = []
        for kernel in ("dense", "batch"):
            machine = Ultracomputer(
                MachineConfig(
                    n_pes=8, kernel=kernel, instrument=True,
                    trace_capacity=1 << 12,
                )
            )
            machine.spawn_many(8, _program, 4, 13)
            for _ in range(10):
                machine.step()
            machine.run_cycles(25)
            outcomes.append(
                (machine.stats().to_dict(), machine.run().to_dict())
            )
        assert outcomes[0] == outcomes[1]

    def test_unknown_kernel_still_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            Ultracomputer(MachineConfig(n_pes=4, kernel="vector"))
