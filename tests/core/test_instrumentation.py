"""Unit tests for the metrics registry and cycle trace.

Covers the registry's get-or-create semantics, each instrument kind,
the disabled-mode no-op guarantees, and the ring-buffered trace.
"""

import pytest

from repro.instrumentation import (
    DISABLED,
    CycleTrace,
    Instrumentation,
    MetricTypeError,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("requests")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(2, 4, 8))
        for value in (1, 2, 3, 9):
            histogram.observe(value)
        data = histogram.data()
        # buckets: <=2, <=4, <=8, overflow
        assert data.bucket_counts == (2, 1, 0, 1)
        assert data.count == 4
        assert data.total == 15
        assert data.max_value == 9
        assert data.mean == pytest.approx(15 / 4)

    def test_quantile_interpolates_within_buckets(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(2, 4, 8))
        for value in (1, 1, 3, 7):
            histogram.observe(value)
        data = histogram.data()
        # rank 2 of 4 sits exactly at the top of the <=2 bucket
        assert data.quantile(0.5) == pytest.approx(2.0)
        # clamped to the exact tracked maximum, not the bucket edge (8)
        assert data.quantile(1.0) == 7.0
        # the live histogram and its frozen snapshot agree
        assert histogram.quantile(1.0) == data.quantile(1.0)

    def test_quantile_empty_histogram_is_zero(self):
        data = MetricsRegistry().histogram("latency", buckets=(2,)).data()
        assert data.quantile(0.5) == 0.0
        assert data.quantile(1.0) == 0.0

    def test_quantile_single_bucket_mass(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(10,))
        for _ in range(4):
            histogram.observe(4)
        data = histogram.data()
        # all mass in one bucket: interpolation spans [0, 10] but the
        # estimate never exceeds the tracked max
        assert data.quantile(1.0) == 4.0
        assert 0.0 < data.quantile(0.25) <= 4.0

    def test_quantile_overflow_bucket_interpolates_to_max(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(2,))
        for value in (30, 40, 50):
            histogram.observe(value)
        data = histogram.data()
        # mass entirely above the last edge: interpolate over [2, max]
        assert data.quantile(1.0) == 50.0
        assert 2.0 < data.quantile(0.5) < 50.0

    def test_percentiles_default_set(self):
        histogram = MetricsRegistry().histogram("latency", buckets=(2, 4))
        histogram.observe(1)
        percentiles = histogram.percentiles()
        assert set(percentiles) == {0.5, 0.9, 0.95, 0.99, 1.0}
        assert percentiles[1.0] == 1.0

    def test_quantile_out_of_range_rejected(self):
        data = MetricsRegistry().histogram("latency").data()
        with pytest.raises(ValueError):
            data.quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("latency", buckets=(4, 2))


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("combines", stage=0)
        b = registry.counter("combines", stage=0)
        assert a is b
        a.inc()
        assert b.value == 1

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("combines", stage=0)
        b = registry.counter("combines", stage=1)
        assert a is not b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("combines")
        with pytest.raises(MetricTypeError):
            registry.gauge("combines")

    def test_snapshot_is_immutable_view(self):
        registry = MetricsRegistry()
        counter = registry.counter("combines", stage=0)
        counter.inc(5)
        snapshot = registry.snapshot()
        counter.inc(5)
        assert snapshot.counter("combines", stage=0) == 5
        assert registry.snapshot().counter("combines", stage=0) == 10


class TestSnapshotQueries:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("combines", stage=0).inc(4)
        registry.counter("combines", stage=1).inc(2)
        registry.histogram("latency", buckets=(2, 4)).observe(3)
        return registry.snapshot()

    def test_total_sums_across_labels(self):
        assert self._snapshot().total("combines") == 6

    def test_by_label_groups(self):
        assert self._snapshot().by_label("combines", "stage") == {0: 4, 1: 2}

    def test_missing_counter_defaults_to_zero(self):
        assert self._snapshot().counter("nonexistent") == 0

    def test_missing_histogram_is_none(self):
        assert self._snapshot().histogram("nonexistent") is None

    def test_to_dict_round_trips_through_json(self):
        import json

        payload = json.dumps(self._snapshot().to_dict())
        restored = json.loads(payload)
        assert len(restored["metrics"]) == 3


class TestDisabled:
    def test_disabled_singleton_flags_off(self):
        assert DISABLED.enabled is False
        assert DISABLED.trace is None

    def test_disabled_record_is_noop(self):
        # must not raise, must not allocate trace storage
        DISABLED.record("issue", 0, tag=1)
        assert DISABLED.trace is None

    def test_disabled_snapshot_is_empty(self):
        assert DISABLED.snapshot().samples == ()

    def test_empty_snapshot_classmethod(self):
        empty = MetricsSnapshot.empty()
        assert empty.samples == ()
        assert empty.total("anything") == 0


class TestTraceEventSerialization:
    def test_zero_valued_fields_survive_to_dict(self):
        from repro.instrumentation import TraceEvent

        # 0 is a legal tag, PE index, stage, MM index, and F&A value;
        # only None means "not applicable" and is omitted.
        event = TraceEvent(
            kind="reply", cycle=0, tag=0, pe=0, stage=0, mm=0, value=0
        )
        assert event.to_dict() == {
            "kind": "reply", "cycle": 0, "tag": 0, "pe": 0,
            "stage": 0, "mm": 0, "value": 0,
        }

    def test_none_fields_omitted(self):
        from repro.instrumentation import TraceEvent

        event = TraceEvent(kind="issue", cycle=3, tag=1, pe=2)
        assert event.to_dict() == {
            "kind": "issue", "cycle": 3, "tag": 1, "pe": 2,
        }

    def test_zero_tag2_survives(self):
        from repro.instrumentation import TraceEvent

        event = TraceEvent(kind="combine", cycle=5, tag=9, stage=1, tag2=0)
        assert event.to_dict()["tag2"] == 0


class TestCycleTrace:
    def test_events_are_recorded_in_order(self):
        trace = CycleTrace(capacity=10)
        trace.record("issue", 1, tag=1, pe=0)
        trace.record("reply", 5, tag=1, pe=0, value=7)
        events = trace.events()
        assert [e.kind for e in events] == ["issue", "reply"]
        assert events[1].value == 7

    def test_ring_buffer_drops_oldest(self):
        trace = CycleTrace(capacity=3)
        for cycle in range(5):
            trace.record("issue", cycle, tag=cycle)
        events = trace.events()
        assert len(events) == 3
        assert [e.cycle for e in events] == [2, 3, 4]
        assert trace.dropped == 2

    def test_filter_by_kind(self):
        trace = CycleTrace(capacity=10)
        trace.record("issue", 1)
        trace.record("combine", 2)
        trace.record("issue", 3)
        assert [e.cycle for e in trace.events("issue")] == [1, 3]


class TestInstrumentationFacade:
    def test_enabled_with_trace(self):
        instr = Instrumentation(enabled=True, trace_capacity=8)
        instr.counter("requests").inc()
        instr.record("issue", 1, tag=1)
        assert instr.snapshot().counter("requests") == 1
        assert len(instr.trace.events()) == 1

    def test_enabled_without_trace(self):
        instr = Instrumentation(enabled=True)
        assert instr.trace is None
        instr.record("issue", 1, tag=1)  # silently dropped
