"""Tests for the serialization principle machinery (section 2.1)."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.core.serialization import (
    SerializationWitness,
    all_serial_outcomes,
    apply_serially,
    fetch_add_outcome_valid,
    is_serializable,
    serialize_batch,
)

from helpers import operation_batches


class TestApplySerially:
    def test_textual_order_by_default(self):
        ops = [Store(0, 1), Load(0)]
        outcome = apply_serially({}, ops)
        assert outcome.results == (None, 1)
        assert outcome.final_value(0) == 1

    def test_explicit_order(self):
        ops = [Store(0, 1), Load(0)]
        outcome = apply_serially({}, ops, order=[1, 0])
        assert outcome.results == (None, 0)  # load first sees initial 0
        assert outcome.final_value(0) == 1

    def test_unset_addresses_read_zero(self):
        outcome = apply_serially({}, [Load(5)])
        assert outcome.results == (0,)

    def test_initial_memory_respected(self):
        outcome = apply_serially({2: 10}, [FetchAdd(2, 5)])
        assert outcome.results == (10,)
        assert outcome.final_value(2) == 15


class TestPaperExample:
    """The section 2.2 example: two simultaneous F&As on V."""

    def test_two_fetch_adds_both_orders(self):
        ops = [FetchAdd(0, 3), FetchAdd(0, 4)]  # ei = 3, ej = 4
        outcomes = all_serial_outcomes({0: 10}, ops)
        results = {o.results for o in outcomes}
        # "either ANSi <- V, ANSj <- V+ei or ANSi <- V+ej, ANSj <- V"
        assert results == {(10, 13), (14, 10)}
        # "in either case, the value of V becomes V+ei+ej"
        assert all(o.final_value(0) == 17 for o in outcomes)

    def test_one_load_two_stores(self):
        # The section 2.1 example: cell gets one of the stored values;
        # the load returns the original value or one of the stores'.
        ops = [Load(0), Store(0, 7), Store(0, 9)]
        outcomes = all_serial_outcomes({0: 1}, ops)
        finals = {o.final_value(0) for o in outcomes}
        loads = {o.results[0] for o in outcomes}
        assert finals == {7, 9}
        assert loads == {1, 7, 9}


class TestIsSerializable:
    def test_accepts_any_enumerated_outcome(self):
        ops = [FetchAdd(0, 1), FetchAdd(0, 2), Store(1, 5)]
        for outcome in all_serial_outcomes({}, ops):
            assert is_serializable({}, ops, outcome)

    def test_rejects_impossible_outcome(self):
        from repro.core.serialization import BatchOutcome

        ops = [FetchAdd(0, 1), FetchAdd(0, 1)]
        bogus = BatchOutcome(results=(5, 6), final={0: 2})
        assert not is_serializable({}, ops, bogus)

    def test_rejects_lost_update(self):
        from repro.core.serialization import BatchOutcome

        # Both F&As returning 0 would mean one increment was lost.
        ops = [FetchAdd(0, 1), FetchAdd(0, 1)]
        bogus = BatchOutcome(results=(0, 0), final={0: 2})
        assert not is_serializable({}, ops, bogus)


class TestFetchAddChecker:
    def test_valid_uniform_batch(self):
        assert fetch_add_outcome_valid(0, [1, 1, 1], [0, 2, 1], 3)

    def test_detects_duplicate_intermediate(self):
        assert not fetch_add_outcome_valid(0, [1, 1, 1], [0, 0, 1], 3)

    def test_detects_wrong_total(self):
        assert not fetch_add_outcome_valid(0, [1, 1], [0, 1], 3)

    def test_mixed_increments(self):
        # order: +5 then -2: results must be {0, 5} in that order
        assert fetch_add_outcome_valid(0, [5, -2], [0, 5], 3)
        assert fetch_add_outcome_valid(0, [-2, 5], [2, 0], 3) is False

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            fetch_add_outcome_valid(0, [1], [0, 1], 2)

    @given(
        st.integers(-5, 5),
        st.lists(st.integers(-4, 4), min_size=1, max_size=6),
        st.permutations(range(6)),
    )
    def test_every_true_serialization_is_accepted(self, initial, incs, perm):
        order = [i for i in perm if i < len(incs)]
        outcome = apply_serially({0: initial}, [FetchAdd(0, e) for e in incs], order)
        assert fetch_add_outcome_valid(
            initial, incs, list(outcome.results), outcome.final_value(0)
        )


class TestPropertyBatches:
    @settings(max_examples=60, deadline=None)
    @given(operation_batches(max_size=4))
    def test_all_outcomes_share_op_count(self, ops):
        outcomes = all_serial_outcomes({}, ops)
        assert outcomes
        for outcome in outcomes:
            assert len(outcome.results) == len(ops)

    @settings(max_examples=60, deadline=None)
    @given(operation_batches(max_size=4))
    def test_single_address_fetch_adds_commute(self, ops):
        faa_only = [FetchAdd(0, getattr(op, "increment", 1)) for op in ops]
        outcomes = all_serial_outcomes({}, faa_only)
        finals = {o.final_value(0) for o in outcomes}
        assert len(finals) == 1  # commutative: unique final value


class TestWitness:
    def test_replay_reproduces_memory(self):
        witness = SerializationWitness()
        memory = {0: 5}
        ops = [FetchAdd(0, 1), Store(1, 3)]
        serialize_batch(memory, ops, [1, 0])
        witness.record(ops, [1, 0])
        replayed = witness.replay({0: 5})
        assert replayed[0] == memory[0]
        assert replayed[1] == memory[1]
