"""Tests for the full Ultracomputer machine (section 3)."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.core.paracomputer import Paracomputer
from repro.core.serialization import fetch_add_outcome_valid


def incrementer(pe_id, counter, times):
    returned = []
    for _ in range(times):
        old = yield FetchAdd(counter, 1)
        returned.append(old)
    return returned


class TestBasicOperation:
    def test_single_request_round_trip(self, small_machine):
        def program(pe_id):
            yield Store(3, 77)
            value = yield Load(3)
            return value

        small_machine.spawn(program)
        stats = small_machine.run()
        assert small_machine.programs.return_values[0] == 77
        assert small_machine.peek(3) == 77
        assert stats.requests_issued == 2
        assert stats.replies_received == 2

    def test_latency_is_logarithmic_shape(self):
        """Unloaded round trip grows like 2*log2(N) + constant."""
        rtts = {}
        for n in (4, 16, 64):
            machine = Ultracomputer(MachineConfig(n_pes=n))

            def program(pe_id):
                yield Load(0)

            machine.spawn(program)
            stats = machine.run()
            rtts[n] = stats.mean_round_trip
        # each 4x size step adds 2 stages each way = ~4 cycles
        assert rtts[16] - rtts[4] == pytest.approx(4, abs=1.5)
        assert rtts[64] - rtts[16] == pytest.approx(4, abs=1.5)

    def test_every_pe_reaches_every_module(self):
        machine = Ultracomputer(MachineConfig(n_pes=8, translation="blocked",
                                              words_per_module=16))

        def prober(pe_id, n):
            seen = []
            for mm in range(n):
                value = yield Load(mm * 16)  # blocked: module = addr//16
                seen.append(value)
            return seen

        for mm in range(8):
            machine.poke(mm * 16, 100 + mm)
        machine.spawn_many(8, prober, 8)
        machine.run()
        for pe in range(8):
            assert machine.programs.return_values[pe] == [100 + m for m in range(8)]


class TestSerializationOnHardware:
    def test_hotspot_fetch_adds_valid_and_combined(self, small_machine):
        small_machine.spawn_many(8, incrementer, 0, 8)
        stats = small_machine.run()
        results = [
            v
            for pe in range(8)
            for v in small_machine.programs.return_values[pe]
        ]
        assert fetch_add_outcome_valid(0, [1] * 64, results, small_machine.peek(0))
        assert stats.combines > 0
        assert stats.decombines == stats.combines
        # combining collapses traffic: far fewer memory accesses than requests
        assert stats.memory_accesses < stats.requests_issued

    def test_machine_matches_paracomputer_memory_image(self):
        def mixed(pe_id, n_pes):
            yield FetchAdd(0, 1)
            yield Store(10 + pe_id, pe_id * pe_id)
            value = yield Load(10 + (pe_id + 1) % n_pes)
            yield FetchAdd(1, value if value else 1)

        machine = Ultracomputer(MachineConfig(n_pes=8))
        machine.spawn_many(8, mixed, 8)
        machine.run()

        para = Paracomputer(seed=0)
        para.spawn_many(8, mixed, 8)
        para.run(10_000)

        # counter 0 and the store region are schedule-independent
        assert machine.peek(0) == para.peek(0) == 8
        for pe in range(8):
            assert machine.peek(10 + pe) == para.peek(10 + pe)


class TestCombiningAblation:
    def test_disabling_combining_serializes_hotspot(self):
        def build(combining):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, combining=combining)
            )
            machine.spawn_many(16, incrementer, 0, 4)
            return machine, machine.run()

        with_combining = build(True)[1]
        without_combining = build(False)[1]
        assert with_combining.combines > 0
        assert without_combining.combines == 0
        # Correctness holds either way...
        # ...but the serialized version pays many more memory accesses
        assert (
            without_combining.memory_accesses
            > with_combining.memory_accesses
        )
        assert (
            without_combining.mean_round_trip
            > with_combining.mean_round_trip
        )

    def test_both_settings_produce_correct_sum(self):
        for combining in (True, False):
            machine = Ultracomputer(MachineConfig(n_pes=16, combining=combining))
            machine.spawn_many(16, incrementer, 0, 4)
            machine.run()
            assert machine.peek(0) == 64


class TestRunControl:
    def test_run_raises_when_not_quiescent(self, small_machine):
        def spinner(pe_id):
            while True:
                yield Load(0)

        small_machine.spawn(spinner)
        with pytest.raises(RuntimeError, match="quiesce"):
            small_machine.run(max_cycles=100)

    def test_run_cycles_is_exact(self, small_machine):
        small_machine.run_cycles(37)
        assert small_machine.cycle == 37

    def test_quiescent_initially(self, small_machine):
        assert small_machine.quiescent()

    def test_spawn_beyond_pe_count_rejected(self, small_machine):
        def program(pe_id):
            yield Load(0)

        with pytest.raises(ValueError, match="only"):
            small_machine.spawn_many(9, program)


class TestStats:
    def test_idle_and_compute_tracking(self, small_machine):
        def program(pe_id):
            yield 5
            yield Load(0)
            yield 3

        small_machine.spawn(program)
        stats = small_machine.run()
        assert stats.compute_cycles == 8
        assert stats.idle_cycles > 0  # waited for the load round trip

    def test_combining_rate_zero_without_traffic(self, small_machine):
        stats = small_machine.run()
        assert stats.combining_rate == 0.0
