"""Property-based tests: the serialization principle under fuzzing.

The paper's correctness claim is that the combining network "appears to
the user as a paracomputer": any batch of simultaneous operations
behaves as if executed in *some* serial order.  Example-based tests pin
specific schedules; here ``hypothesis`` searches the space of increment
multisets, arrival staggers, and combine trees for counterexamples:

* any interleaving of simultaneous fetch-and-adds to one cell conserves
  the sum and returns a serializable multiset of prefix sums;
* folding fetch-and-adds pairwise through ``try_combine`` in any
  association order is itself serializable (combining associativity);
* pairwise combines of mixed operation types match some serial order of
  the two original requests;
* and the dense/event kernels agree on every generated workload — the
  equivalence grid, fuzzed.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.combining import try_combine
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import (
    PHI_OPERATORS,
    FetchAdd,
    FetchPhi,
    Load,
    Store,
    Swap,
    TestAndSet,
    as_fetch_phi,
)
from repro.core.serialization import (
    BatchOutcome,
    fetch_add_outcome_valid,
    is_serializable,
)

# Small nonzero magnitudes keep the reconstruction search in
# fetch_add_outcome_valid fast while still exercising ties (equal
# increments) and sign changes.
increments_strategy = st.lists(
    st.integers(min_value=-7, max_value=7), min_size=2, max_size=8
)


def _run_simultaneous_faas(increments, gaps, kernel):
    """Issue one F&A per PE against cell 0 with per-PE start staggers."""
    machine = Ultracomputer(MachineConfig(n_pes=8, kernel=kernel))

    def program(pe_id, increment, gap):
        if gap:
            yield gap
        return (yield FetchAdd(0, increment))

    for pe_id, (increment, gap) in enumerate(zip(increments, gaps)):
        machine.spawn(program, increment, gap)
    result = machine.run(max_cycles=10_000)
    returned = [result.per_pe[pe].return_value for pe in range(len(increments))]
    return returned, machine.peek(0), result.to_dict()


class TestFetchAddSerialization:
    @given(
        increments=increments_strategy,
        gaps=st.lists(st.integers(min_value=1, max_value=5), min_size=8, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_machine_interleavings_serialize_and_conserve(self, increments, gaps):
        gaps = [g if g > 1 else 0 for g in gaps]  # mix immediate and staggered
        returned, final, _ = _run_simultaneous_faas(increments, gaps, "dense")
        assert final == sum(increments)  # conserved sum (cell starts at 0)
        assert fetch_add_outcome_valid(0, increments, returned, final)

    @given(
        increments=increments_strategy,
        gaps=st.lists(st.integers(min_value=1, max_value=5), min_size=8, max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_kernels_agree_on_fuzzed_workloads(self, increments, gaps):
        dense = _run_simultaneous_faas(increments, gaps, "dense")
        event = _run_simultaneous_faas(increments, gaps, "event")
        assert dense == event


class TestCombineAssociativity:
    @given(
        initial=st.integers(min_value=-100, max_value=100),
        increments=increments_strategy,
    )
    @settings(max_examples=100, deadline=None)
    def test_pairwise_fold_is_serializable(self, initial, increments):
        """Fold n F&As left-to-right through try_combine, then unwind the
        decombine stack the way a switch's wait buffer does: the replies
        must be valid prefix sums and the cell must hold the full sum."""
        ops = [FetchAdd(0, e) for e in increments]
        forward = ops[0]
        plans = []
        for op in ops[1:]:
            plan = try_combine(forward, op)
            assert plan is not None  # F&As to one cell always combine
            plans.append(plan)
            forward = plan.forward

        effect = forward.apply(initial)
        final = effect.new_value
        assert final == initial + sum(increments)

        # Most-recent combine first: its rule applies to the raw reply.
        results = [None] * len(ops)
        value = effect.result
        for index, plan in zip(range(len(ops) - 1, 0, -1), reversed(plans)):
            results[index] = plan.new_rule.materialize(value)
            value = plan.old_rule.materialize(value)
        results[0] = value

        assert fetch_add_outcome_valid(initial, increments, results, final)


class TestPhiOperatorAlgebra:
    """The registry's declared algebraic flags, checked on sampled ints.

    Combining correctness leans on these flags (section 2.3 requires phi
    associative for the switches to fold requests in tree order), so a
    mislabelled operator would silently corrupt combined results."""

    @given(
        name=st.sampled_from(sorted(PHI_OPERATORS)),
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=-1000, max_value=1000),
        c=st.integers(min_value=-1000, max_value=1000),
    )
    @settings(max_examples=300, deadline=None)
    def test_declared_flags_hold(self, name, a, b, c):
        phi = PHI_OPERATORS[name]
        if phi.associative:
            assert phi(phi(a, b), c) == phi(a, phi(b, c))
        if phi.commutative:
            assert phi(a, b) == phi(b, a)


class TestFetchPhiNormalization:
    """``as_fetch_phi`` preserves semantics for every op kind (section
    2.4: each primitive is a special case of fetch-and-phi)."""

    @given(
        address=st.integers(min_value=0, max_value=63),
        operand=st.integers(min_value=-100, max_value=100),
        old=st.integers(min_value=-1000, max_value=1000),
    )
    @settings(max_examples=200, deadline=None)
    def test_normalized_form_matches_original(self, address, operand, old):
        ops = [
            Load(address),
            Store(address, operand),
            Swap(address, operand),
            FetchAdd(address, operand),
            TestAndSet(address),
            FetchPhi(address, operand, PHI_OPERATORS["max"]),
        ]
        for op in ops:
            normalized = as_fetch_phi(op)
            assert isinstance(normalized, FetchPhi)
            assert normalized.address == op.address
            direct = op.apply(old)
            via_phi = normalized.apply(old)
            assert via_phi.new_value == direct.new_value
            if op.expects_value:
                # Store/ack-style ops discard the fetched value; for the
                # rest the normalized form must return the same result.
                assert via_phi.result == direct.result

    def test_fetch_phi_is_identity_and_zero_operand_forms_intern(self):
        phi_op = FetchPhi(3, 5, PHI_OPERATORS["add"])
        assert as_fetch_phi(phi_op) is phi_op
        assert as_fetch_phi(Load(7)) is as_fetch_phi(Load(7))
        assert as_fetch_phi(TestAndSet(9)) is as_fetch_phi(TestAndSet(9))


def _mixed_op(draw_kind, value):
    if draw_kind == "load":
        return Load(0)
    if draw_kind == "store":
        return Store(0, value)
    if draw_kind == "swap":
        return Swap(0, value)
    return FetchAdd(0, value)


class TestMixedPairCombining:
    @given(
        initial=st.integers(min_value=-50, max_value=50),
        old_kind=st.sampled_from(["load", "store", "swap", "faa"]),
        new_kind=st.sampled_from(["load", "store", "swap", "faa"]),
        old_value=st.integers(min_value=-9, max_value=9),
        new_value=st.integers(min_value=-9, max_value=9),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_pairwise_combine_matches_a_serial_order(
        self, initial, old_kind, new_kind, old_value, new_value
    ):
        old = _mixed_op(old_kind, old_value)
        new = _mixed_op(new_kind, new_value)
        plan = try_combine(old, new)
        if plan is None:
            return  # not combinable: nothing to verify
        effect = plan.forward.apply(initial)
        observed = BatchOutcome(
            results=(
                plan.old_rule.materialize(effect.result),
                plan.new_rule.materialize(effect.result),
            ),
            final={0: effect.new_value},
        )
        assert is_serializable({0: initial}, [old, new], observed)
