"""MachineConfig.validate(): every rejection carries an actionable message."""

import pytest

from repro import MachineConfig, Ultracomputer


def test_valid_config_passes():
    MachineConfig(n_pes=16).validate()


def test_constructor_calls_validate():
    with pytest.raises(ValueError, match="power of k"):
        Ultracomputer(MachineConfig(n_pes=6))


class TestTopology:
    def test_k_too_small(self):
        with pytest.raises(ValueError, match="k"):
            MachineConfig(n_pes=8, k=1).validate()

    def test_n_pes_below_k(self):
        with pytest.raises(ValueError, match="n_pes"):
            MachineConfig(n_pes=1).validate()

    def test_non_power_of_k_suggests_neighbors(self):
        with pytest.raises(ValueError, match="nearest valid sizes are 8 and 16"):
            MachineConfig(n_pes=12).validate()

    def test_non_power_of_k_suggests_neighbors_k2_100(self):
        with pytest.raises(ValueError, match="nearest valid sizes are 64 and 128"):
            MachineConfig(n_pes=100).validate()

    def test_power_of_three_for_k_three(self):
        MachineConfig(n_pes=27, k=3).validate()
        with pytest.raises(ValueError, match="power of k"):
            MachineConfig(n_pes=24, k=3).validate()

    def test_unknown_topology_lists_choices(self):
        with pytest.raises(ValueError, match="unknown topology"):
            MachineConfig(n_pes=16, topology="torus9d").validate()

    def test_hypercube_suggests_nearest_powers_of_two(self):
        MachineConfig(n_pes=16, topology="hypercube").validate()
        with pytest.raises(ValueError, match="nearest valid sizes: 64 and 128"):
            MachineConfig(n_pes=100, topology="hypercube").validate()

    def test_mesh_suggests_nearest_squares(self):
        MachineConfig(n_pes=16, topology="mesh").validate()
        with pytest.raises(ValueError, match="nearest valid sizes: 100 and 121"):
            MachineConfig(n_pes=108, topology="mesh").validate()

    def test_mesh_accepts_non_power_of_two_squares(self):
        MachineConfig(n_pes=9, topology="mesh").validate()

    def test_batch_kernel_is_omega_only(self):
        with pytest.raises(ValueError, match="kernel 'batch' supports only"):
            MachineConfig(n_pes=16, topology="mesh", kernel="batch").validate()
        with pytest.raises(ValueError, match="dense"):
            MachineConfig(n_pes=16, topology="hypercube", kernel="batch").validate()
        MachineConfig(n_pes=16, topology="omega", kernel="batch").validate()


class TestComponentBounds:
    def test_copies_must_be_positive(self):
        with pytest.raises(ValueError, match="copies"):
            MachineConfig(n_pes=8, copies=0).validate()

    def test_mm_latency_must_be_positive(self):
        with pytest.raises(ValueError, match="mm_latency"):
            MachineConfig(n_pes=8, mm_latency=0).validate()

    def test_queue_capacity_rejects_zero(self):
        with pytest.raises(ValueError, match="queue_capacity_packets"):
            MachineConfig(n_pes=8, queue_capacity_packets=0).validate()

    def test_wait_buffer_rejects_negative(self):
        with pytest.raises(ValueError, match="wait_buffer_capacity"):
            MachineConfig(n_pes=8, wait_buffer_capacity=-1).validate()

    def test_max_outstanding_rejects_zero(self):
        with pytest.raises(ValueError, match="max_outstanding"):
            MachineConfig(n_pes=8, max_outstanding=0).validate()

    def test_words_per_module_rejects_zero(self):
        with pytest.raises(ValueError, match="words_per_module"):
            MachineConfig(n_pes=8, words_per_module=0).validate()

    def test_none_capacities_mean_unbounded(self):
        MachineConfig(
            n_pes=8,
            queue_capacity_packets=None,
            wait_buffer_capacity=None,
            max_outstanding=None,
        ).validate()


class TestTranslationAndInstrumentation:
    def test_unknown_translation_lists_schemes(self):
        with pytest.raises(ValueError, match="interleaved"):
            MachineConfig(n_pes=8, translation="random").validate()

    def test_trace_requires_instrument(self):
        with pytest.raises(ValueError, match="instrument=True"):
            MachineConfig(n_pes=8, trace_capacity=100).validate()

    def test_negative_trace_capacity(self):
        with pytest.raises(ValueError, match="trace_capacity"):
            MachineConfig(n_pes=8, instrument=True, trace_capacity=-1).validate()

    def test_instrumented_config_valid(self):
        MachineConfig(n_pes=8, instrument=True, trace_capacity=1000).validate()
