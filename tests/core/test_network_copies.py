"""Tests for multiple network copies in the cycle machine (the d of
section 4.1, realized: "it is also possible to use several copies of the
same network, thereby reducing the effective load on each one")."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.workloads.synthetic import SyntheticTrafficDriver, TrafficSpec


def counter_program(pe_id, rounds):
    for _ in range(rounds):
        yield FetchAdd(0, 1)
    return True


class TestCorrectness:
    @pytest.mark.parametrize("copies", [1, 2, 3])
    def test_counter_correct_with_any_copy_count(self, copies):
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=copies))
        machine.spawn_many(8, counter_program, 6)
        machine.run()
        assert machine.peek(0) == 48

    def test_replies_return_on_request_copy(self):
        """Tag striping is self-describing: every message round-trips
        even when copies hold different amalgam state."""
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=2))

        def program(pe_id):
            for i in range(6):
                yield Store(100 + pe_id * 8 + i, pe_id + i)
            values = []
            for i in range(6):
                values.append((yield Load(100 + pe_id * 8 + i)))
            return values

        machine.spawn_many(8, program)
        machine.run()
        for pe in range(8):
            assert machine.programs.return_values[pe] == [pe + i for i in range(6)]

    def test_invalid_copy_count(self):
        with pytest.raises(ValueError):
            Ultracomputer(MachineConfig(n_pes=8, copies=0))

    def test_traffic_actually_striped(self):
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=2))
        machine.spawn_many(8, counter_program, 4)
        machine.run()
        routed = [
            sum(s.stats.requests_routed for row in net.stages for s in row)
            for net in machine.networks
        ]
        assert all(count > 0 for count in routed)


class TestPerformance:
    def test_copies_reduce_latency_under_load(self):
        """The section 4.1 effect on the real simulator: d copies divide
        the effective per-copy load, cutting queueing delay."""
        latencies = {}
        for copies in (1, 2):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, copies=copies, combining=False)
            )
            driver = SyntheticTrafficDriver(
                machine, TrafficSpec(rate=0.30, seed=4)
            )
            machine.attach_driver(driver)
            machine.run_cycles(800)
            latencies[copies] = driver.stats().mean_latency
        assert latencies[2] < latencies[1]

    def test_copies_do_not_hurt_unloaded_latency(self):
        rtts = {}
        for copies in (1, 2):
            machine = Ultracomputer(MachineConfig(n_pes=16, copies=copies))

            def program(pe_id):
                yield Load(0)

            machine.spawn(program)
            rtts[copies] = machine.run().mean_round_trip
        assert rtts[2] == pytest.approx(rtts[1], abs=1.0)
