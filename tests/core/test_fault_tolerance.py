"""Tests for network-copy failover ("enhancing network reliability")."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load


def counter_program(pe_id, rounds):
    for _ in range(rounds):
        yield FetchAdd(0, 1)
    return True


class TestFailover:
    def test_failed_copy_is_avoided(self):
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=2))
        machine.fail_network_copy(0)
        machine.spawn_many(8, counter_program, 4)
        machine.run()
        assert machine.peek(0) == 32
        routed = [
            sum(s.stats.requests_routed for row in net.stages for s in row)
            for net in machine.networks
        ]
        assert routed[0] == 0  # nothing touched the failed copy
        assert routed[1] > 0

    def test_failover_mid_run(self):
        """Drain, fail a copy, keep computing: correctness unaffected."""
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=2))
        machine.spawn_many(8, counter_program, 3)
        machine.run()
        assert machine.peek(0) == 24
        machine.fail_network_copy(1)
        machine.spawn_many(0, counter_program, 0)  # no-op; reuse machine
        machine.programs.spawn_many(0, counter_program, 0)
        # run a second wave of programs on fresh drivers
        from repro.core.machine import ProgramDriver

        second = ProgramDriver(machine)
        machine.attach_driver(second)
        second.spawn_many(8, counter_program, 3)
        machine.run()
        assert machine.peek(0) == 48

    def test_cannot_fail_last_copy(self):
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=1))
        with pytest.raises(ValueError, match="last"):
            machine.fail_network_copy(0)

    def test_cannot_fail_unknown_or_failed_copy(self):
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=2))
        machine.fail_network_copy(0)
        with pytest.raises(ValueError, match="not in service"):
            machine.fail_network_copy(0)

    def test_cannot_fail_copy_with_traffic(self):
        machine = Ultracomputer(MachineConfig(n_pes=8, copies=2))
        pni = machine.pnis[0]
        pni.issue(Load(0), 0)
        machine.step()  # request enters some copy
        target = next(
            i for i, net in enumerate(machine.networks) if not net.is_drained()
        )
        with pytest.raises(RuntimeError, match="in flight"):
            machine.fail_network_copy(target)

    def test_degraded_bandwidth_not_correctness(self):
        """Losing a copy under load: everything still completes, just
        slower than the two-copy machine."""
        from repro.workloads.synthetic import SyntheticTrafficDriver, TrafficSpec

        latencies = {}
        for healthy in (2, 1):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, copies=2, combining=False)
            )
            if healthy == 1:
                machine.fail_network_copy(1)
            driver = SyntheticTrafficDriver(
                machine, TrafficSpec(rate=0.30, seed=5)
            )
            machine.attach_driver(driver)
            machine.run_cycles(600)
            stats = driver.stats()
            assert stats.completed > 0
            latencies[healthy] = stats.mean_latency
        assert latencies[1] > latencies[2]
