"""Unit tests for the memory-operation algebra (paper section 2)."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.memory_ops import (
    Effect,
    FetchAdd,
    FetchPhi,
    Load,
    PHI_OPERATORS,
    Store,
    Swap,
    TestAndSet,
    as_fetch_phi,
    get_phi,
)


class TestBasicSemantics:
    def test_load_returns_old_value_and_preserves_cell(self):
        assert Load(0).apply(42) == Effect(new_value=42, result=42)

    def test_store_replaces_value_and_returns_nothing(self):
        assert Store(0, 7).apply(42) == Effect(new_value=7, result=None)

    def test_fetch_add_returns_old_and_adds(self):
        # The defining example of section 2.2.
        assert FetchAdd(0, 5).apply(10) == Effect(new_value=15, result=10)

    def test_fetch_add_negative_increment(self):
        assert FetchAdd(0, -3).apply(10) == Effect(new_value=7, result=10)

    def test_swap_exchanges(self):
        assert Swap(0, 9).apply(4) == Effect(new_value=9, result=4)

    def test_test_and_set_on_clear(self):
        assert TestAndSet(0).apply(0) == Effect(new_value=1, result=0)

    def test_test_and_set_on_set_is_idempotent(self):
        assert TestAndSet(0).apply(1) == Effect(new_value=1, result=1)

    def test_fetch_phi_max(self):
        phi = PHI_OPERATORS["max"]
        assert FetchPhi(0, 7, phi).apply(3) == Effect(new_value=7, result=3)
        assert FetchPhi(0, 2, phi).apply(3) == Effect(new_value=3, result=3)


class TestPacketAccounting:
    """Message sizing follows the section 4.2 simulation model."""

    def test_load_carries_no_data(self):
        assert not Load(0).carries_data
        assert Load(0).expects_value

    def test_store_carries_data_and_expects_no_value(self):
        assert Store(0, 1).carries_data
        assert not Store(0, 1).expects_value

    def test_fetch_add_carries_data_and_expects_value(self):
        op = FetchAdd(0, 1)
        assert op.carries_data
        assert op.expects_value


class TestPhiRegistry:
    def test_get_phi_known(self):
        assert get_phi("add")(2, 3) == 5

    def test_get_phi_unknown_lists_known(self):
        with pytest.raises(KeyError, match="add"):
            get_phi("bogus")

    def test_operator_equality_by_name(self):
        assert get_phi("add") == get_phi("add")
        assert get_phi("add") != get_phi("max")
        assert hash(get_phi("or")) == hash(get_phi("or"))

    def test_all_registered_operators_marked_associative_correctly(self):
        # Every registered operator must actually be associative on a
        # sample of triples, since combining correctness rests on it.
        samples = [(-3, 0, 5), (1, 2, 3), (7, 7, 7), (-1, -2, -3)]
        for name, phi in PHI_OPERATORS.items():
            if not phi.associative:
                continue
            for a, b, c in samples:
                assert phi(phi(a, b), c) == phi(a, phi(b, c)), name


class TestFetchPhiNormalization:
    """Section 2.4: every operation is a degenerate fetch-and-phi."""

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_load_is_fetch_proj1(self, old, operand):
        normalized = as_fetch_phi(Load(3))
        assert normalized.phi.name == "proj1"
        assert normalized.apply(old).new_value == old
        assert normalized.apply(old).result == old

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_store_is_fetch_proj2(self, old, value):
        normalized = as_fetch_phi(Store(3, value))
        assert normalized.phi.name == "proj2"
        assert normalized.apply(old).new_value == value

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_fetch_add_normalization_matches(self, old, inc):
        original = FetchAdd(1, inc).apply(old)
        normalized = as_fetch_phi(FetchAdd(1, inc)).apply(old)
        assert original.new_value == normalized.new_value
        assert original.result == normalized.result

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_swap_normalization_matches(self, old, value):
        original = Swap(1, value).apply(old)
        normalized = as_fetch_phi(Swap(1, value)).apply(old)
        assert original.new_value == normalized.new_value
        assert original.result == normalized.result

    @given(st.integers(0, 50))
    def test_test_and_set_is_fetch_or(self, old):
        original = TestAndSet(1).apply(old)
        normalized = as_fetch_phi(TestAndSet(1)).apply(old)
        assert original.new_value == normalized.new_value
        assert original.result == normalized.result

    def test_normalization_preserves_address(self):
        assert as_fetch_phi(Load(17)).address == 17
        assert as_fetch_phi(Store(23, 1)).address == 23

    def test_fetch_phi_normalizes_to_itself(self):
        op = FetchPhi(2, 5, PHI_OPERATORS["max"])
        assert as_fetch_phi(op) is op


class TestImmutability:
    def test_operations_are_frozen(self):
        with pytest.raises(AttributeError):
            Load(0).address = 1  # type: ignore[misc]

    def test_operations_are_hashable(self):
        assert len({Load(0), Load(0), Store(0, 1)}) == 2
