"""Tests for the idealized paracomputer (section 2.1)."""

import pytest

from repro.core.memory_ops import FetchAdd, Load, Store, Swap
from repro.core.paracomputer import DeadlockError, Paracomputer
from repro.core.serialization import fetch_add_outcome_valid


def incrementer(pe_id, counter, times):
    returned = []
    for _ in range(times):
        old = yield FetchAdd(counter, 1)
        returned.append(old)
    return returned


class TestProtocol:
    def test_single_pe_load_store(self):
        def program(pe_id):
            yield Store(0, 42)
            value = yield Load(0)
            return value

        para = Paracomputer()
        para.spawn(program)
        stats = para.run(100)
        assert stats.per_pe[0].return_value == 42
        assert para.peek(0) == 42

    def test_compute_delay_costs_cycles(self):
        def fast(pe_id):
            yield Store(0, 1)

        def slow(pe_id):
            yield 50
            yield Store(1, 1)

        para = Paracomputer()
        para.spawn(fast)
        para.spawn(slow)
        stats = para.run(200)
        assert stats.per_pe[1].finished_cycle - stats.per_pe[0].finished_cycle >= 45

    def test_yield_none_is_one_cycle(self):
        def program(pe_id):
            for _ in range(10):
                yield None

        para = Paracomputer()
        para.spawn(program)
        stats = para.run(100)
        assert 10 <= stats.cycles <= 13

    def test_non_generator_rejected(self):
        para = Paracomputer()
        with pytest.raises(TypeError, match="generator"):
            para.spawn(lambda pe_id: 42)

    def test_bad_yield_type_rejected(self):
        def program(pe_id):
            yield "bogus"

        para = Paracomputer()
        para.spawn(program)
        with pytest.raises(TypeError, match="bogus"):
            para.run(10)

    def test_non_positive_delay_rejected(self):
        def program(pe_id):
            yield 0

        para = Paracomputer()
        para.spawn(program)
        with pytest.raises(ValueError):
            para.run(10)

    def test_deadlock_error_on_timeout(self):
        def spinner(pe_id):
            while True:
                yield Load(0)

        para = Paracomputer()
        para.spawn(spinner)
        with pytest.raises(DeadlockError):
            para.run(50)


class TestSerializationSemantics:
    def test_concurrent_fetch_adds_obey_principle(self):
        para = Paracomputer(seed=7)
        para.spawn_many(16, incrementer, 0, 1)
        stats = para.run(100)
        results = [stats.per_pe[pe].return_value[0] for pe in range(16)]
        assert fetch_add_outcome_valid(0, [1] * 16, results, para.peek(0))
        # single-cycle shared access: one round of 16 simultaneous F&As
        # should complete in a handful of cycles, not 16.
        assert stats.cycles <= 5

    def test_distinct_indices_from_shared_counter(self):
        # The section 2.2 array-index example: every PE gets a distinct
        # element.
        para = Paracomputer(seed=3)
        para.spawn_many(32, incrementer, 0, 4)
        stats = para.run(1000)
        everything = [v for pe in range(32) for v in stats.per_pe[pe].return_value]
        assert sorted(everything) == list(range(128))
        assert para.peek(0) == 128

    def test_swap_chain_conserves_values(self):
        def swapper(pe_id, cell, token):
            received = yield Swap(cell, token)
            return received

        para = Paracomputer(seed=5)
        para.poke(0, 999)
        for pe in range(8):
            para.spawn(swapper, 0, pe)
        stats = para.run(100)
        got = sorted(
            [stats.per_pe[pe].return_value for pe in range(8)] + [para.peek(0)]
        )
        assert got == sorted([999] + list(range(8)))

    def test_determinism_for_fixed_seed(self):
        def run(seed):
            para = Paracomputer(seed=seed)
            para.spawn_many(8, incrementer, 0, 5)
            stats = para.run(500)
            return [stats.per_pe[pe].return_value for pe in range(8)]

        assert run(42) == run(42)
        # different seed should (overwhelmingly) produce a different
        # serialization of the concurrent batches
        assert run(42) != run(43)


class TestWitness:
    def test_audited_run_replays_to_same_memory(self):
        para = Paracomputer(seed=9, audit=True)
        para.spawn_many(8, incrementer, 0, 3)

        def writer(pe_id):
            yield Store(5, pe_id)
            value = yield Load(5)
            return value

        para.spawn(writer)
        para.run(200)
        replayed = para.witness.replay({})
        for address, value in replayed.items():
            assert para.peek(address) == value


class TestHelpers:
    def test_load_and_dump_region(self):
        para = Paracomputer()
        para.load_region(100, [5, 6, 7])
        assert para.dump_region(100, 3) == [5, 6, 7]
        assert para.dump_region(103, 1) == [0]

    def test_stats_counters(self):
        para = Paracomputer()
        para.spawn_many(4, incrementer, 0, 3)
        stats = para.run(100)
        assert stats.requests_issued == 12
        assert len(stats.per_pe) == 4
        assert all(r.finished for r in stats.per_pe.values())
