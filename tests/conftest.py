"""Shared fixtures for the test suite (strategies live in helpers.py).

The ``sys.path`` shim that makes ``python -m pytest`` work without
``PYTHONPATH=src`` lives in the repo-root ``conftest.py`` (shared with
benchmarks/), which pytest loads before this file.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_exp_cache(tmp_path, monkeypatch):
    """Point the experiment result cache at a per-test directory so no
    test reads or pollutes the user's real ~/.cache/repro/exp."""
    monkeypatch.setenv("REPRO_EXP_CACHE", str(tmp_path / "exp-cache"))
    monkeypatch.setenv("REPRO_EXP_SHARDS", str(tmp_path / "exp-shards"))


@pytest.fixture
def small_machine():
    """An 8-PE Ultracomputer with the paper's default parameters."""
    from repro.core.machine import MachineConfig, Ultracomputer

    return Ultracomputer(MachineConfig(n_pes=8))


@pytest.fixture
def paracomputer():
    from repro.core.paracomputer import Paracomputer

    return Paracomputer(seed=1234)
