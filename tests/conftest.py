"""Shared fixtures for the test suite (strategies live in helpers.py)."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `python -m pytest` work from the repo root without the
# `PYTHONPATH=src` prefix (the documented invocation keeps working —
# the insert is a no-op when the path is already present).
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest


@pytest.fixture
def small_machine():
    """An 8-PE Ultracomputer with the paper's default parameters."""
    from repro.core.machine import MachineConfig, Ultracomputer

    return Ultracomputer(MachineConfig(n_pes=8))


@pytest.fixture
def paracomputer():
    from repro.core.paracomputer import Paracomputer

    return Paracomputer(seed=1234)
