"""Shared fixtures for the test suite (strategies live in helpers.py)."""

from __future__ import annotations

import pytest


@pytest.fixture
def small_machine():
    """An 8-PE Ultracomputer with the paper's default parameters."""
    from repro.core.machine import MachineConfig, Ultracomputer

    return Ultracomputer(MachineConfig(n_pes=8))


@pytest.fixture
def paracomputer():
    from repro.core.paracomputer import Paracomputer

    return Paracomputer(seed=1234)
