"""The ``repro fleet`` command family: status, dump, trace — plus the
``--keep-events`` sweep flag that preserves logs for them."""

import json

import pytest

from repro.cli import build_parser, main
from repro.exp.backend import ShardedBackend
from repro.obs.events import FleetEvent, flight_dump


@pytest.fixture
def finished_batch(tmp_path):
    """A real 2-shard sweep, logs preserved; returns the batch dir."""
    backend = ShardedBackend(shards=2, root=tmp_path / "shards",
                             poll=0.01, keep_events=True)
    backend.start()
    tasks = [(i, "debug.echo", json.dumps({"value": i})) for i in range(4)]
    completions = list(backend.run_tasks(tasks, batch_id="cli-batch"))
    backend.shutdown()
    assert len(completions) == 4
    batch = tmp_path / "shards" / "cli-batch"
    assert batch.is_dir()
    return batch, backend.last_trace


class TestFleetParser:
    def test_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "status", "/x", "--watch",
                                  "--interval", "0.5"])
        assert args.fleet_command == "status" and args.interval == 0.5
        args = parser.parse_args(["fleet", "dump", "/y", "--json"])
        assert args.fleet_command == "dump"
        args = parser.parse_args(["fleet", "trace", "/z", "--out", "o.json"])
        assert args.fleet_command == "trace"

    def test_keep_events_needs_sharded(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "table1", "--keep-events",
                  "--cache-dir", str(tmp_path / "c")])


class TestFleetStatus:
    def test_summarizes_finished_batch(self, finished_batch, capsys):
        batch, _trace = finished_batch
        assert main(["fleet", "status", str(batch)]) == 0
        out = capsys.readouterr().out
        assert "cli-batch" in out and "[done]" in out
        assert "driver" in out and "shard-0" in out

    def test_json_snapshot(self, finished_batch, capsys):
        batch, trace = finished_batch
        assert main(["fleet", "status", str(batch), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] is True
        assert payload["trace"] == trace
        assert payload["by_kind"]["batch_done"] == 1
        assert payload["by_kind"]["result_write"] >= 1
        assert set(payload["workers"]) >= {"driver", "shard-0", "shard-1"}

    def test_watch_exits_when_done(self, finished_batch, capsys):
        batch, _trace = finished_batch
        assert main(["fleet", "status", str(batch), "--watch",
                     "--interval", "0.01"]) == 0

    def test_missing_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fleet", "status", str(tmp_path / "nope")])


class TestFleetDump:
    def _write_dump(self, directory):
        events = [FleetEvent(ts=float(i), kind="heartbeat", trace="t",
                             worker="shard-0", span="b0.g1",
                             fields={"block": 0})
                  for i in range(3)]
        return flight_dump(directory, "worker-crash", events, trace="t")

    def test_pretty_prints_file(self, tmp_path, capsys):
        path = self._write_dump(tmp_path)
        assert main(["fleet", "dump", str(path)]) == 0
        out = capsys.readouterr().out
        assert "worker-crash" in out
        assert "heartbeat" in out and "shard-0" in out

    def test_directory_picks_latest(self, tmp_path, capsys):
        self._write_dump(tmp_path)
        assert main(["fleet", "dump", str(tmp_path)]) == 0
        assert "worker-crash" in capsys.readouterr().out

    def test_json_output_round_trips(self, tmp_path, capsys):
        path = self._write_dump(tmp_path)
        assert main(["fleet", "dump", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reason"] == "worker-crash"
        assert len(payload["events"]) == 3

    def test_empty_directory_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fleet", "dump", str(tmp_path)])


class TestFleetTrace:
    def test_writes_chrome_trace(self, finished_batch, tmp_path, capsys):
        batch, trace = finished_batch
        out_path = tmp_path / "fleet.json"
        assert main(["fleet", "trace", str(batch), "--out", str(out_path),
                     "--trace", trace]) == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"
                and e.get("name") == "process_name"]
        assert {e["args"]["name"] for e in meta} \
            >= {"driver", "shard-0", "shard-1"}
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_empty_batch_errors(self, tmp_path):
        (tmp_path / "events").mkdir()
        with pytest.raises(SystemExit):
            main(["fleet", "trace", str(tmp_path), "--out",
                  str(tmp_path / "o.json")])
