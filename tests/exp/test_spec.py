"""ExperimentSpec / SweepAxis: canonicalization, points, hashing."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineConfig
from repro.exp import ExperimentSpec, SweepAxis, point_hash
from repro.exp.spec import canonical_json, canonical_value


class TestCanonicalization:
    def test_scalars_pass_through(self):
        for value in (1, 2.5, "x", True, None):
            assert canonical_value(value) == value

    def test_sequences_become_tuples(self):
        assert canonical_value([1, [2, 3]]) == (1, (2, 3))

    def test_unhashable_rejected(self):
        with pytest.raises(TypeError):
            canonical_value({"nested": "dict"})

    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": (1, 2)}) == '{"a":[1,2],"b":1}'


class TestSweepPoints:
    def test_cartesian_product_row_major(self):
        spec = ExperimentSpec(
            experiment="x",
            axes=(SweepAxis("a", (1, 2)), SweepAxis("b", ("u", "v"))),
        )
        combos = [
            (p.as_dict()["a"], p.as_dict()["b"])
            for p in spec.points()
        ]
        assert combos == [(1, "u"), (1, "v"), (2, "u"), (2, "v")]

    def test_base_params_and_seed_injected(self):
        spec = ExperimentSpec(
            experiment="x", base={"n": 4096}, axes=(SweepAxis("a", (1,)),),
            seed=5,
        )
        (point,) = spec.points()
        params = point.as_dict()
        assert params["n"] == 4096
        assert params["seed"] == 5

    def test_machine_axis_overrides_machine_field(self):
        spec = ExperimentSpec(
            experiment="x",
            machine=MachineConfig(n_pes=8),
            axes=(SweepAxis("machine.combining", (True, False)),),
        )
        machines = [p.as_dict()["machine"] for p in spec.points()]
        assert [m["combining"] for m in machines] == [True, False]
        assert all(m["n_pes"] == 8 for m in machines)

    def test_reserved_axis_names_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(experiment="x", axes=(SweepAxis("seed", (1, 2)),))

    def test_no_axes_yields_single_point(self):
        spec = ExperimentSpec(experiment="x", base={"k": 1})
        points = list(spec.points())
        assert len(points) == 1
        assert points[0].as_dict()["k"] == 1


class TestRoundTripAndHash:
    def _spec(self):
        return ExperimentSpec(
            experiment="machine.hotspot",
            base={"rounds": 4},
            machine=MachineConfig(n_pes=16, instrument=True),
            axes=(SweepAxis("machine.combining", (True, False)),),
            seed=3,
            label="ablation",
        )

    def test_to_from_dict_round_trip(self):
        spec = self._spec()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_hash_stable_across_dict_ordering(self):
        a = ExperimentSpec(experiment="x", base={"a": 1, "b": 2})
        b = ExperimentSpec(experiment="x", base={"b": 2, "a": 1})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_ignores_label(self):
        spec = self._spec()
        relabeled = ExperimentSpec.from_dict(
            {**spec.to_dict(), "label": "other"}
        )
        assert relabeled.spec_hash() == spec.spec_hash()

    def test_hash_changes_with_content(self):
        spec = self._spec()
        reseeded = ExperimentSpec.from_dict({**spec.to_dict(), "seed": 4})
        assert reseeded.spec_hash() != spec.spec_hash()

    def test_spec_is_hashable(self):
        assert len({self._spec(), self._spec()}) == 1

    def test_point_hash_shared_across_overlapping_sweeps(self):
        # Two different sweeps containing the same point address the
        # same cache entry — that is what makes partial sweeps resume.
        small = ExperimentSpec(experiment="x", axes=(SweepAxis("a", (1,)),))
        large = ExperimentSpec(
            experiment="x", axes=(SweepAxis("a", (1, 2)),)
        )
        (p_small,) = small.points()
        p_large = next(iter(large.points()))
        assert point_hash("x", p_small) == point_hash("x", p_large)

    def test_point_hash_differs_across_experiments(self):
        spec = ExperimentSpec(experiment="x", axes=(SweepAxis("a", (1,)),))
        (point,) = spec.points()
        assert point_hash("x", point) != point_hash("y", point)


class TestNonFiniteRejection:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_scalars_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            canonical_value(bad)

    def test_non_finite_nested_in_sequence_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            canonical_value([1.0, [2.0, float("nan")]])

    def test_spec_with_non_finite_base_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ExperimentSpec(experiment="x", base={"rho": float("inf")})

    def test_axis_with_non_finite_value_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            SweepAxis("rho", (0.5, float("nan")))


# -- adversarial round-trip properties ---------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 30), max_value=10 ** 30),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_values = st.recursive(
    _scalars, lambda inner: st.lists(inner, max_size=4), max_leaves=10
)
_keys = st.text(min_size=1, max_size=20).filter(
    lambda s: s not in ExperimentSpec._RESERVED
)
_params = st.dictionaries(_keys, _values, max_size=5)
_axis_values = st.lists(_scalars, min_size=1, max_size=4)


@st.composite
def _specs(draw):
    base = draw(_params)
    axis_names = draw(
        st.lists(
            _keys.filter(
                lambda s: s not in base and not s.startswith("machine.")
            ),
            max_size=2,
            unique=True,
        )
    )
    axes = tuple(
        SweepAxis(name, tuple(draw(_axis_values))) for name in axis_names
    )
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    label = draw(st.text(max_size=10))
    return ExperimentSpec(
        experiment="prop.echo", base=base, axes=axes, seed=seed, label=label
    )


class TestSpecRoundTripProperties:
    """Canonical-JSON round trips under adversarial parameters: unicode
    keys, deeply nested sequences, huge ints, float edge values."""

    @given(spec=_specs())
    @settings(max_examples=120, deadline=None)
    def test_dict_round_trip_is_identity(self, spec):
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    @given(spec=_specs())
    @settings(max_examples=120, deadline=None)
    def test_survives_strict_json_wire_format(self, spec):
        # allow_nan=False is the strict interchange profile every peer
        # (curl, browsers, other languages) actually speaks.
        wire = json.dumps(spec.to_dict(), allow_nan=False)
        clone = ExperimentSpec.from_dict(json.loads(wire))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    @given(spec=_specs())
    @settings(max_examples=60, deadline=None)
    def test_hash_independent_of_base_insertion_order(self, spec):
        payload = spec.to_dict()
        reordered = dict(payload)
        reordered["base"] = dict(reversed(list(payload["base"].items())))
        assert (
            ExperimentSpec.from_dict(reordered).spec_hash()
            == spec.spec_hash()
        )

    @given(spec=_specs())
    @settings(max_examples=60, deadline=None)
    def test_point_params_survive_json_round_trip(self, spec):
        # What a worker receives (params after a JSON round trip) must
        # re-encode to the identical canonical string — the cache-replay
        # indistinguishability contract.
        for point in spec.points():
            if point.index > 2:
                break  # grids can be large; the property is per-point
            params = point.as_dict()
            assert canonical_json(json.loads(canonical_json(params))) == (
                canonical_json(params)
            )

    @given(value=_values)
    @settings(max_examples=120, deadline=None)
    def test_canonical_value_idempotent(self, value):
        once = canonical_value(value)
        assert canonical_value(once) == once

    @given(
        value=st.floats(allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_float_edge_values_hash_stably(self, value):
        a = ExperimentSpec(experiment="x", base={"v": value})
        b = ExperimentSpec.from_dict(a.to_dict())
        assert math.copysign(1.0, dict(b.base)["v"]) == math.copysign(
            1.0, value
        )  # -0.0 keeps its sign through the round trip
        assert a.spec_hash() == b.spec_hash()


class TestMachineConfigSerialization:
    def test_round_trip(self):
        config = MachineConfig(n_pes=32, combining=False, instrument=True)
        assert MachineConfig.from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            MachineConfig.from_dict({"n_pes": 8, "warp_drive": True})
