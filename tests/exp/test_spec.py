"""ExperimentSpec / SweepAxis: canonicalization, points, hashing."""

from __future__ import annotations

import pytest

from repro.core.machine import MachineConfig
from repro.exp import ExperimentSpec, SweepAxis, point_hash
from repro.exp.spec import canonical_json, canonical_value


class TestCanonicalization:
    def test_scalars_pass_through(self):
        for value in (1, 2.5, "x", True, None):
            assert canonical_value(value) == value

    def test_sequences_become_tuples(self):
        assert canonical_value([1, [2, 3]]) == (1, (2, 3))

    def test_unhashable_rejected(self):
        with pytest.raises(TypeError):
            canonical_value({"nested": "dict"})

    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": (1, 2)}) == '{"a":[1,2],"b":1}'


class TestSweepPoints:
    def test_cartesian_product_row_major(self):
        spec = ExperimentSpec(
            experiment="x",
            axes=(SweepAxis("a", (1, 2)), SweepAxis("b", ("u", "v"))),
        )
        combos = [
            (p.as_dict()["a"], p.as_dict()["b"])
            for p in spec.points()
        ]
        assert combos == [(1, "u"), (1, "v"), (2, "u"), (2, "v")]

    def test_base_params_and_seed_injected(self):
        spec = ExperimentSpec(
            experiment="x", base={"n": 4096}, axes=(SweepAxis("a", (1,)),),
            seed=5,
        )
        (point,) = spec.points()
        params = point.as_dict()
        assert params["n"] == 4096
        assert params["seed"] == 5

    def test_machine_axis_overrides_machine_field(self):
        spec = ExperimentSpec(
            experiment="x",
            machine=MachineConfig(n_pes=8),
            axes=(SweepAxis("machine.combining", (True, False)),),
        )
        machines = [p.as_dict()["machine"] for p in spec.points()]
        assert [m["combining"] for m in machines] == [True, False]
        assert all(m["n_pes"] == 8 for m in machines)

    def test_reserved_axis_names_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(experiment="x", axes=(SweepAxis("seed", (1, 2)),))

    def test_no_axes_yields_single_point(self):
        spec = ExperimentSpec(experiment="x", base={"k": 1})
        points = list(spec.points())
        assert len(points) == 1
        assert points[0].as_dict()["k"] == 1


class TestRoundTripAndHash:
    def _spec(self):
        return ExperimentSpec(
            experiment="machine.hotspot",
            base={"rounds": 4},
            machine=MachineConfig(n_pes=16, instrument=True),
            axes=(SweepAxis("machine.combining", (True, False)),),
            seed=3,
            label="ablation",
        )

    def test_to_from_dict_round_trip(self):
        spec = self._spec()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_hash_stable_across_dict_ordering(self):
        a = ExperimentSpec(experiment="x", base={"a": 1, "b": 2})
        b = ExperimentSpec(experiment="x", base={"b": 2, "a": 1})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_ignores_label(self):
        spec = self._spec()
        relabeled = ExperimentSpec.from_dict(
            {**spec.to_dict(), "label": "other"}
        )
        assert relabeled.spec_hash() == spec.spec_hash()

    def test_hash_changes_with_content(self):
        spec = self._spec()
        reseeded = ExperimentSpec.from_dict({**spec.to_dict(), "seed": 4})
        assert reseeded.spec_hash() != spec.spec_hash()

    def test_spec_is_hashable(self):
        assert len({self._spec(), self._spec()}) == 1

    def test_point_hash_shared_across_overlapping_sweeps(self):
        # Two different sweeps containing the same point address the
        # same cache entry — that is what makes partial sweeps resume.
        small = ExperimentSpec(experiment="x", axes=(SweepAxis("a", (1,)),))
        large = ExperimentSpec(
            experiment="x", axes=(SweepAxis("a", (1, 2)),)
        )
        (p_small,) = small.points()
        p_large = next(iter(large.points()))
        assert point_hash("x", p_small) == point_hash("x", p_large)

    def test_point_hash_differs_across_experiments(self):
        spec = ExperimentSpec(experiment="x", axes=(SweepAxis("a", (1,)),))
        (point,) = spec.points()
        assert point_hash("x", point) != point_hash("y", point)


class TestMachineConfigSerialization:
    def test_round_trip(self):
        config = MachineConfig(n_pes=32, combining=False, instrument=True)
        assert MachineConfig.from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            MachineConfig.from_dict({"n_pes": 8, "warp_drive": True})
