"""AdaptiveSampler: seed/calibrate/refine/audit on synthetic surfaces."""

from __future__ import annotations

import math

import pytest

from repro.exp import (
    AdaptiveProfile,
    AdaptiveSampler,
    ExperimentSpec,
    SweepAxis,
    adaptive_profile,
    adaptive_profiles,
    point_function,
    serial_runner,
)

# A synthetic surface whose "model" is value = x and whose observation
# carries a controllable correction: obs = x * gain * exp(curve * x).
# gain != 1 is pure bias (constant correction, perfectly interpolable);
# curve != 0 bends the correction surface and should draw refinement.


@point_function("adaptivetest.surface")
def _surface(params):
    x = params["x"]
    gain = params.get("gain", 1.0)
    curve = params.get("curve", 0.0)
    return {"obs": x * gain * math.exp(curve * x)}


PROFILE = AdaptiveProfile(
    experiment="adaptivetest.surface",
    predict=lambda p: float(p["x"]) if p["x"] >= 0 else None,
    observe=lambda payload: payload["obs"],
    quantity="obs",
)

XS = tuple(float(x) for x in range(1, 12))


def surface_spec(base=None, axes=None, seed=0):
    return ExperimentSpec(
        experiment="adaptivetest.surface",
        base=base or {},
        axes=axes or (SweepAxis("x", XS),),
        seed=seed,
    )


def sampler(**kwargs):
    kwargs.setdefault("threshold", 0.05)
    kwargs.setdefault("audit_fraction", 0.25)
    return AdaptiveSampler(serial_runner(), PROFILE, **kwargs)


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            sampler(threshold=0)

    def test_audit_fraction_bounds(self):
        with pytest.raises(ValueError):
            sampler(audit_fraction=1.5)

    def test_profile_experiment_mismatch(self):
        spec = ExperimentSpec(experiment="debug.echo")
        with pytest.raises(ValueError, match="adaptivetest.surface"):
            sampler().run(spec)

    def test_unknown_experiment_has_no_profile(self):
        with pytest.raises(KeyError, match="no adaptive profile"):
            adaptive_profile("no.such.experiment")

    def test_builtin_profiles_cover_figure7(self):
        assert "fig7.cross_topology" in adaptive_profiles()
        assert "fig7.simulated" in adaptive_profiles()


class TestConstantBias:
    """A purely biased model (constant correction) needs only the seed
    corners: calibration absorbs the bias exactly."""

    def test_skips_everything_between_corners(self):
        report = sampler(audit_fraction=0.0).run(surface_spec({"gain": 2.0}))
        by_source = {p.index: p.source for p in report.points}
        assert by_source[0] == "seed"
        assert by_source[len(XS) - 1] == "seed"
        assert all(source == "model" for index, source in by_source.items()
                   if index not in (0, len(XS) - 1))
        assert report.simulated_points == 2
        assert report.skipped_fraction == pytest.approx(
            (len(XS) - 2) / len(XS))

    def test_model_estimates_are_exact(self):
        report = sampler().run(surface_spec({"gain": 2.0}))
        for p in report.points:
            if p.source == "model":
                assert p.value == pytest.approx(2.0 * p.params["x"])
        assert report.aggregate_rel_error == pytest.approx(0.0, abs=1e-12)

    def test_audit_measures_zero_error_on_exact_surface(self):
        report = sampler(audit_fraction=0.5).run(surface_spec({"gain": 3.0}))
        assert report.audit_errors  # some skipped points were audited
        assert report.max_audit_rel_error == pytest.approx(0.0, abs=1e-12)


class TestCurvedCorrection:
    def test_curvature_draws_refinement(self):
        report = sampler().run(surface_spec({"curve": 0.12}))
        sources = {p.source for p in report.points}
        assert "refined" in sources

    def test_estimates_track_the_curved_surface(self):
        report = sampler().run(surface_spec({"curve": 0.12}))
        for p in report.points:
            if p.source == "model":
                truth = p.params["x"] * math.exp(0.12 * p.params["x"])
                assert abs(p.value - truth) / truth < 0.05

    def test_tighter_threshold_simulates_more(self):
        loose = sampler(threshold=0.2, audit_fraction=0.0).run(
            surface_spec({"curve": 0.03}))
        tight = sampler(threshold=0.02, audit_fraction=0.0).run(
            surface_spec({"curve": 0.03}))
        assert tight.simulated_points > loose.simulated_points


class TestAbstainingPrior:
    def test_abstentions_are_forced_exact(self):
        xs = (-2.0, -1.0) + XS  # prior abstains below zero
        report = sampler().run(surface_spec(axes=(SweepAxis("x", xs),)))
        by_x = {p.params["x"]: p for p in report.points}
        assert by_x[-2.0].source == "forced"
        assert by_x[-1.0].source == "forced"
        assert by_x[-1.0].value == pytest.approx(-1.0)  # simulated exactly


class TestCategoricalGroups:
    def test_each_group_calibrates_independently(self):
        spec = surface_spec(
            base={"gain": 2.0},
            axes=(SweepAxis("label", ("low", "high")), SweepAxis("x", XS)),
        )
        report = sampler(audit_fraction=0.0).run(spec)
        seeds = [p for p in report.points if p.source == "seed"]
        assert len(seeds) == 4  # two corners per categorical group

    def test_groups_with_different_bias_both_estimate_exactly(self):
        @point_function("adaptivetest.grouped")
        def _grouped(params):
            gain = {"low": 2.0, "high": 7.0}[params["label"]]
            return {"obs": params["x"] * gain}

        profile = AdaptiveProfile(
            experiment="adaptivetest.grouped",
            predict=lambda p: float(p["x"]),
            observe=lambda payload: payload["obs"],
        )
        spec = ExperimentSpec(
            experiment="adaptivetest.grouped",
            axes=(SweepAxis("label", ("low", "high")), SweepAxis("x", XS)),
        )
        report = AdaptiveSampler(
            serial_runner(), profile, threshold=0.05, audit_fraction=0.5
        ).run(spec)
        gains = {"low": 2.0, "high": 7.0}
        for p in report.points:
            assert p.value == pytest.approx(gains[p.params["label"]]
                                            * p.params["x"])
        assert report.max_audit_rel_error == pytest.approx(0.0, abs=1e-12)


class TestReportShape:
    def test_counts_partition_the_grid(self):
        report = sampler().run(surface_spec({"curve": 0.12}))
        assert report.total_points == len(XS)
        assert report.simulated_points + report.skipped_points == len(XS)

    def test_runs_are_deterministic(self):
        first = sampler().run(surface_spec({"curve": 0.08}, seed=5))
        second = sampler().run(surface_spec({"curve": 0.08}, seed=5))
        assert ([p.source for p in first.points]
                == [p.source for p in second.points])
        assert ([p.value for p in first.points]
                == [p.value for p in second.points])

    def test_to_dict_round_trips_cleanly(self):
        import json

        report = sampler().run(surface_spec({"gain": 2.0}))
        payload = report.to_dict()
        assert payload["total_points"] == len(XS)
        assert payload["quantity"] == "obs"
        assert len(payload["points"]) == len(XS)
        json.dumps(payload)  # strict-JSON serializable
