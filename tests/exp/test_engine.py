"""SweepRunner: serial/pool execution, streaming, caching, resume."""

from __future__ import annotations

import pytest

from repro.exp import (
    ExperimentSpec,
    NullCache,
    ResultCache,
    SweepAxis,
    SweepRunner,
    point_function,
    serial_runner,
)

# Registered once at import; fork-started pool workers inherit these.


@point_function("enginetest.double")
def _double(params):
    return {"value": params["x"] * 2, "seed": params["seed"]}


@point_function("enginetest.boom")
def _boom(params):
    raise RuntimeError("point exploded")


@point_function("enginetest.unserializable")
def _unserializable(params):
    return {"ok": 1, "nested": {"handle": object()}}


def double_spec(values=(1, 2, 3), seed=0):
    return ExperimentSpec(
        experiment="enginetest.double",
        axes=(SweepAxis("x", tuple(values)),),
        seed=seed,
    )


class TestSerialExecution:
    def test_payloads_in_index_order(self, tmp_path):
        result = serial_runner().run(double_spec((5, 1, 3)))
        assert [p["value"] for p in result.payloads] == [10, 2, 6]
        assert result.workers == 1
        assert result.cached_points == 0

    def test_seed_reaches_point_function(self):
        result = serial_runner().run(double_spec((1,), seed=9))
        assert result.payloads[0]["seed"] == 9

    def test_serial_runner_never_touches_disk(self, tmp_path):
        serial_runner().run(double_spec())
        # the autouse fixture points REPRO_EXP_CACHE at tmp_path;
        # nothing may appear there
        assert not list(tmp_path.rglob("*.json"))

    def test_unknown_experiment_raises(self):
        spec = ExperimentSpec(experiment="no.such.experiment")
        with pytest.raises(KeyError, match="no.such.experiment"):
            serial_runner().run(spec)

    def test_point_error_propagates(self):
        spec = ExperimentSpec(experiment="enginetest.boom")
        with pytest.raises(RuntimeError, match="point exploded"):
            serial_runner().run(spec)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)


class TestCachingAndResume:
    def _runner(self, tmp_path, **kwargs):
        return SweepRunner(
            workers=1, cache=ResultCache(tmp_path / "cache"), **kwargs
        )

    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        cold = self._runner(tmp_path).run(double_spec())
        warm = self._runner(tmp_path).run(double_spec())
        assert cold.cached_points == 0 and cold.computed_points == 3
        assert warm.cached_points == 3 and warm.computed_points == 0
        assert warm.payloads == cold.payloads

    def test_partial_sweep_resumes(self, tmp_path):
        self._runner(tmp_path).run(double_spec((1, 2)))
        widened = self._runner(tmp_path).run(double_spec((1, 2, 3, 4)))
        assert widened.cached_points == 2
        assert widened.computed_points == 2
        assert [p["value"] for p in widened.payloads] == [2, 4, 6, 8]

    def test_different_seed_misses(self, tmp_path):
        self._runner(tmp_path).run(double_spec(seed=0))
        reseeded = self._runner(tmp_path).run(double_spec(seed=1))
        assert reseeded.cached_points == 0

    def test_refresh_ignores_but_rewrites_entries(self, tmp_path):
        self._runner(tmp_path).run(double_spec())
        refreshed = self._runner(tmp_path, refresh=True).run(double_spec())
        assert refreshed.cached_points == 0
        rerun = self._runner(tmp_path).run(double_spec())
        assert rerun.cached_points == 3

    def test_stream_yields_cached_points_first(self, tmp_path):
        self._runner(tmp_path).run(double_spec((1, 2)))
        runner = self._runner(tmp_path)
        order = [
            (outcome.cached, outcome.index)
            for outcome in runner.stream(double_spec((1, 2, 3)))
        ]
        assert order == [(True, 0), (True, 1), (False, 2)]

    def test_break_mid_stream_leaves_resumable_state(self, tmp_path):
        runner = self._runner(tmp_path)
        for outcome in runner.stream(double_spec((1, 2, 3))):
            break  # simulate being killed after the first completion
        resumed = self._runner(tmp_path).run(double_spec((1, 2, 3)))
        assert resumed.cached_points >= 1

    def test_on_point_callback(self, tmp_path):
        seen = []
        self._runner(tmp_path).run(
            double_spec(), on_point=lambda outcome: seen.append(outcome.index)
        )
        assert sorted(seen) == [0, 1, 2]


class TestPayloadSerialization:
    """Regression: a non-JSON payload used to be ``repr``-stringified
    silently, poisoning the content-addressed cache with values that
    never compared equal across runs.  Now it raises, naming the
    experiment and the offending key."""

    def test_unserializable_payload_raises_typed_error(self):
        from repro.exp import PayloadSerializationError

        spec = ExperimentSpec(experiment="enginetest.unserializable")
        with pytest.raises(PayloadSerializationError) as excinfo:
            serial_runner().run(spec)
        err = excinfo.value
        assert err.experiment == "enginetest.unserializable"
        assert err.path == "$.nested.handle"
        assert "object" in str(err)
        assert isinstance(err, TypeError)  # old call sites still catch

    def test_nan_payload_is_not_rejected(self):
        # json.dumps allows NaN by default; the engine keeps that
        # behavior — only genuinely unencodable types raise.
        from repro.exp.engine import _canonical_payload

        out = _canonical_payload({"v": float("nan")}, experiment="x")
        assert out["v"] != out["v"]

    def test_locator_finds_nested_offender(self):
        from repro.exp.engine import _find_unserializable

        path, value = _find_unserializable(
            {"a": [1, {"b": {1, 2}}], "c": "fine"}
        )
        assert path == "$.a[1].b"
        assert value == {1, 2}


class TestPoolExecution:
    def test_pool_matches_serial_bit_for_bit(self, tmp_path):
        serial = serial_runner().run(double_spec((1, 2, 3, 4)))
        pooled = SweepRunner(workers=2, cache=NullCache()).run(
            double_spec((1, 2, 3, 4))
        )
        assert pooled.payloads == serial.payloads
        assert pooled.workers == 2

    def test_pool_runs_builtin_machine_experiment(self, tmp_path):
        # the real registry path: workers import the builtin experiments
        from repro.exp import hotspot_spec

        spec = hotspot_spec(pes=4, rounds=2, instrument=False)
        serial = serial_runner().run(spec)
        pooled = SweepRunner(workers=2, cache=NullCache()).run(spec)
        assert pooled.payloads == serial.payloads

    def test_workers_clamped_to_pending(self, tmp_path):
        runner = SweepRunner(workers=8, cache=NullCache())
        assert runner._effective_workers(2) == 2
