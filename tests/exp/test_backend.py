"""Execution backends: registry, bit parity, crash recovery, stealing."""

from __future__ import annotations

import json

import pytest

from repro.exp import (
    ExperimentSpec,
    NullCache,
    SweepAxis,
    SweepRunner,
    serial_runner,
)
from repro.exp.backend import (
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    ShardedBackend,
    ShardedSweepError,
    WorkerCrashError,
    backend_names,
    make_backend,
    register_backend,
    _shard_of,
)


def canonical(payloads) -> str:
    return json.dumps(payloads, sort_keys=True)


def echo_spec(n=6, seed=3):
    return ExperimentSpec(
        experiment="debug.echo",
        base={"tag": "backend"},
        axes=(SweepAxis("n", tuple(range(n))),),
        seed=seed,
    )


def echo_tasks(n=6):
    return [
        (i, "debug.echo", json.dumps({"n": i, "seed": 0}, sort_keys=True))
        for i in range(n)
    ]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "pool", "sharded"} <= set(backend_names())

    def test_make_backend_unknown_name(self):
        with pytest.raises(KeyError, match="no-such-backend"):
            make_backend("no-such-backend")

    def test_make_backend_constructs_each_builtin(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("pool", workers=2), PoolBackend)
        sharded = make_backend("sharded", shards=2)
        assert isinstance(sharded, ShardedBackend)
        assert sharded.workers == 2

    def test_custom_backend_registration(self):
        class Custom(ExecutionBackend):
            name = "custom-test"

            def __init__(self, **_):
                pass

        register_backend("custom-test", Custom)
        try:
            assert "custom-test" in backend_names()
            assert isinstance(make_backend("custom-test"), Custom)
        finally:
            from repro.exp import backend as backend_module

            del backend_module._BACKENDS["custom-test"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", SerialBackend)

    def test_shard_placement_is_stable_and_bounded(self):
        key = "deadbeef" + "0" * 56
        assert _shard_of(key, 4) == int("deadbeef", 16) % 4
        for shards in (1, 2, 3, 7):
            assert 0 <= _shard_of(key, shards) < shards


class TestBitParity:
    """The refactor's core contract: every backend renders the same
    bytes for the same spec."""

    def test_three_backends_bit_identical(self, tmp_path):
        spec = echo_spec()
        rendered = {}
        for name in ("serial", "pool", "sharded"):
            runner = SweepRunner(
                workers=2,
                cache=NullCache(),
                backend=name,
                shards=2,
            )
            result = runner.run(spec)
            assert result.backend == name
            rendered[name] = canonical(result.to_dict()["results"])
        assert rendered["serial"] == rendered["pool"] == rendered["sharded"]

    def test_backend_matches_cache_replay(self, tmp_path):
        from repro.exp import ResultCache

        spec = echo_spec()
        cache = ResultCache(tmp_path / "cache")
        cold = SweepRunner(
            workers=2, cache=cache, backend="sharded", shards=2
        ).run(spec)
        warm = SweepRunner(workers=1, cache=cache).run(spec)
        assert warm.cached_points == spec.n_points
        assert canonical(cold.payloads) == canonical(warm.payloads)

    def test_default_backend_selection_preserved(self):
        # workers=1 -> serial, workers>1 -> pool: the pre-refactor rules
        assert SweepRunner(workers=1, cache=NullCache()).run(
            echo_spec(2)).backend == "serial"
        assert SweepRunner(workers=2, cache=NullCache()).run(
            echo_spec(2)).backend == "pool"


class TestSerialBackend:
    def test_completions_in_submission_order(self):
        completions = list(SerialBackend().run_tasks(echo_tasks(4)))
        assert [index for index, _, _ in completions] == [0, 1, 2, 3]

    def test_stats_accumulate(self):
        backend = SerialBackend()
        list(backend.run_tasks(echo_tasks(3)))
        list(backend.run_tasks(echo_tasks(2)))
        stats = backend.stats()
        assert stats["backend"] == "serial"
        assert stats["batches"] == 2
        assert stats["tasks"] == 5

    def test_point_error_propagates_plainly(self):
        tasks = [(0, "no.such.experiment", "{}")]
        with pytest.raises(KeyError):
            list(SerialBackend().run_tasks(tasks))


class TestPoolBackend:
    def test_worker_crash_rebuilds_pool(self):
        backend = PoolBackend(workers=2)
        crash = [(0, "debug.crash", json.dumps({"code": 3}))]
        try:
            with pytest.raises(WorkerCrashError):
                list(backend.run_tasks(crash))
            assert backend.rebuilds == 1
            # the rebuilt pool serves the next batch normally
            completions = list(backend.run_tasks(echo_tasks(2)))
            assert len(completions) == 2
        finally:
            backend.shutdown()

    def test_shutdown_then_reuse(self):
        backend = PoolBackend(workers=2)
        list(backend.run_tasks(echo_tasks(2)))
        backend.shutdown()
        assert len(list(backend.run_tasks(echo_tasks(2)))) == 2
        backend.shutdown()

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            PoolBackend(workers=0)


class TestShardedBackend:
    def _backend(self, tmp_path, **kwargs):
        kwargs.setdefault("root", tmp_path / "shards")
        return ShardedBackend(shards=2, **kwargs)

    def test_all_tasks_complete_once(self, tmp_path):
        backend = self._backend(tmp_path)
        completions = list(backend.run_tasks(echo_tasks(13), batch_id="b1"))
        assert sorted(index for index, _, _ in completions) == list(range(13))
        payloads = {i: p for i, p, _ in completions}
        assert payloads[7]["echo"]["n"] == 7

    def test_batch_dir_removed_after_completion(self, tmp_path):
        backend = self._backend(tmp_path)
        list(backend.run_tasks(echo_tasks(3), batch_id="cleanup-test"))
        assert not (tmp_path / "shards" / "cleanup-test"[:24]).exists()

    def test_lease_recovery_after_worker_death(self, tmp_path):
        """The crash-detection path end to end: debug.crash_once kills
        its first claimant; the sweep finishes only if the expired lease
        is stolen (or the dead process respawned) and re-executed."""
        # each of the 6 points kills its first claimant, so allow more
        # respawns than the 2*shards default budget
        backend = self._backend(
            tmp_path, lease_ttl=1.0, block_size=1, max_respawns=12
        )
        tasks = [
            (
                i,
                "debug.crash_once",
                json.dumps(
                    {"marker": str(tmp_path / f"marker-{i}"), "value": i},
                    sort_keys=True,
                ),
            )
            for i in range(6)
        ]
        completions = list(backend.run_tasks(tasks, batch_id="crashy"))
        assert sorted(i for i, _, _ in completions) == list(range(6))
        assert all(p["survived"] for _, p, _ in completions)
        stats = backend.stats()
        assert stats["steals"] + stats["respawns"] >= 1

    def test_point_error_raises_sharded_error(self, tmp_path):
        backend = self._backend(tmp_path)
        tasks = [(0, "no.such.experiment", "{}")]
        with pytest.raises(ShardedSweepError, match="no.such.experiment"):
            list(backend.run_tasks(tasks, batch_id="boom"))

    def test_resume_adopts_prior_results(self, tmp_path):
        """A restarted driver harvests result files a killed driver's
        workers left behind, without re-executing those points."""
        backend = self._backend(tmp_path)
        tasks = echo_tasks(4)
        batch = backend._batch_dir(tasks, "resume-test")
        results_dir = batch / "results"
        results_dir.mkdir(parents=True)
        # Fabricate a finished block for points 0 and 1 with payloads a
        # re-execution could not produce, proving adoption over rerun.
        (results_dir / "block-00000.json").write_text(json.dumps({
            "block": 0, "gen": 1, "worker": 0,
            "enqueued": 1.0, "claimed": 2.0, "finished": 3.0,
            "completions": [
                [0, {"echo": {"adopted": True}}, 0.0],
                [1, {"echo": {"adopted": True}}, 0.0],
            ],
        }))
        completions = list(backend.run_tasks(tasks, batch_id="resume-test"))
        payloads = {i: p for i, p, _ in completions}
        assert sorted(payloads) == [0, 1, 2, 3]
        assert payloads[0] == {"echo": {"adopted": True}}
        assert payloads[2]["echo"]["n"] == 2
        assert backend.stats()["resumed_blocks"] == 1

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedBackend(shards=0)

    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        from repro.exp.backend import default_shard_root

        monkeypatch.setenv("REPRO_EXP_SHARDS", str(tmp_path / "sh"))
        assert default_shard_root() == tmp_path / "sh"


class TestRunnerIntegration:
    def test_runner_owns_named_backend_lifecycle(self):
        runner = SweepRunner(workers=2, cache=NullCache(), backend="pool")
        result = runner.run(echo_spec(3))
        assert result.backend == "pool"
        # shutdown happened in stream()'s finally; pool restarts lazily
        assert runner.backend._executor is None

    def test_caller_owned_backend_survives_run(self):
        backend = SerialBackend()
        runner = SweepRunner(workers=1, cache=NullCache(), backend=backend)
        runner.run(echo_spec(2))
        runner.run(echo_spec(2))
        assert backend.stats()["batches"] == 2

    def test_indices_restrict_the_sweep(self):
        runner = serial_runner()
        result = runner.run(echo_spec(6), indices=[1, 4])
        assert [o.index for o in result.outcomes] == [1, 4]
        assert [p["echo"]["n"] for p in result.payloads] == [1, 4]
