"""The flight recorder: crash dumps on worker death, lease steals,
driver resume, and pool collapse — driven by real killed processes."""

import json

import pytest

from repro.exp.backend import (
    PoolBackend,
    ShardedBackend,
    WorkerCrashError,
)
from repro.obs.events import iter_batch_events, read_dump


def _echo_tasks(n, start=0):
    return [(i, "debug.echo", json.dumps({"value": i}))
            for i in range(start, start + n)]


def _dumps(batch_dir, reason=None):
    pattern = f"crash-{reason}-*.json" if reason else "crash-*.json"
    return sorted((batch_dir / "dumps").glob(pattern))


class TestShardedFlightRecorder:
    def test_sigkilled_worker_leaves_heartbeat_and_steal_in_dump(
        self, tmp_path
    ):
        """SIGKILL one shard worker mid-block: the sweep completes via a
        lease steal, and the steal dump preserves the victim's final
        heartbeat next to the thief's steal event."""
        backend = ShardedBackend(
            shards=2, root=tmp_path / "shards", lease_ttl=0.3,
            poll=0.01, block_size=1,
        )
        backend.start()
        marker = tmp_path / "victim-marker"
        tasks = [
            (0, "debug.heartbeat_crash_once",
             json.dumps({"marker": str(marker), "delay": 0.5,
                         "value": 0}, sort_keys=True)),
            (1, "debug.echo", json.dumps({"value": 1})),
        ]
        completions = sorted(backend.run_tasks(tasks, batch_id="fr-kill"))
        backend.shutdown()

        assert len(completions) == 2
        assert completions[0][1] == {"survived": True, "value": 0}
        assert marker.exists()

        batch = tmp_path / "shards" / "fr-kill"
        assert batch.is_dir(), "a dumped batch dir must be preserved"
        steal_dumps = _dumps(batch, "steal")
        assert steal_dumps, "harvesting a gen>1 result must dump"
        payload = read_dump(steal_dumps[-1])
        assert payload["trace"] == backend.last_trace

        events = [e for e in payload["events"]]
        steals = [e for e in events if e["kind"] == "steal"]
        assert steals, "dump must contain the thief's steal event"
        victim_span = steals[0]["parent"]          # b<block>.g<old gen>
        heartbeats = [e for e in events
                      if e["kind"] == "heartbeat"
                      and e.get("span") == victim_span]
        assert heartbeats, \
            "dump must contain the victim's last heartbeat(s)"
        victim = heartbeats[-1]["worker"]
        assert victim != steals[0]["worker"], \
            "thief and victim are different workers"
        # the victim's log ends before the steal: SIGKILL left a
        # truthful, flushed JSONL trail
        assert heartbeats[-1]["ts"] <= steals[0]["ts"]

        # the driver also noticed the dead process and dumped for it
        assert _dumps(batch, "worker-crash")
        kinds = {e.kind for e in iter_batch_events(
            batch, trace=backend.last_trace)}
        assert "respawn" in kinds and "dump" in kinds
        assert backend.stats()["steals"] >= 1

    def test_resume_adoption_writes_resume_dump(self, tmp_path):
        """A second driver over a completed batch adopts the results and
        snapshots the prior fleet's final moments."""
        root = tmp_path / "shards"
        first = ShardedBackend(shards=1, root=root, poll=0.01,
                               keep_events=True)
        first.start()
        assert len(list(first.run_tasks(_echo_tasks(3),
                                        batch_id="fr-resume"))) == 3
        first.shutdown()
        batch = root / "fr-resume"
        assert batch.is_dir()
        assert not _dumps(batch), "clean run dumps nothing"

        second = ShardedBackend(shards=1, root=root, poll=0.01)
        second.start()
        adopted = sorted(second.run_tasks(_echo_tasks(3),
                                          batch_id="fr-resume"))
        second.shutdown()
        assert len(adopted) == 3
        resume_dumps = _dumps(batch, "resume")
        assert resume_dumps
        payload = read_dump(resume_dumps[-1])
        assert payload["reason"] == "resume"
        assert payload["batch"] == "fr-resume"
        # the prior fleet's events are in the snapshot
        kinds = {e["kind"] for e in payload["events"]}
        assert {"worker_start", "result_write"} <= kinds
        # a dump preserves the dir even without keep_events
        assert batch.is_dir()

    def test_disabled_logging_writes_no_dumps(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LOG", "0")
        root = tmp_path / "shards"
        first = ShardedBackend(shards=1, root=root, poll=0.01,
                               keep_events=True)
        first.start()
        list(first.run_tasks(_echo_tasks(2), batch_id="fr-off"))
        first.shutdown()
        second = ShardedBackend(shards=1, root=root, poll=0.01)
        second.start()
        list(second.run_tasks(_echo_tasks(2), batch_id="fr-off"))
        second.shutdown()
        batch = root / "fr-off"
        assert not _dumps(batch)
        assert iter_batch_events(batch) == []


class TestPoolFlightRecorder:
    def test_pool_crash_dumps_before_rebuild(self, tmp_path, monkeypatch):
        """A BrokenProcessPool dump lands *before* the pool rebuild —
        ``rebuilds_at_dump`` pins the ordering."""
        monkeypatch.setenv("REPRO_FLEET_DUMPS", str(tmp_path / "dumps"))
        backend = PoolBackend(workers=1)
        backend.start()
        try:
            with pytest.raises(WorkerCrashError):
                list(backend.run_tasks(
                    [(0, "debug.crash", json.dumps({"code": 3}))],
                    batch_id="fr-pool",
                ))
            assert backend.rebuilds == 1
            dumps = sorted((tmp_path / "dumps").glob(
                "crash-pool-crash-*.json"))
            assert dumps
            payload = read_dump(dumps[-1])
            assert payload["reason"] == "pool-crash"
            assert payload["batch"] == "fr-pool"
            assert payload["rebuilds_at_dump"] == 0, \
                "dump must be written before the rebuild"
            kinds = [e["kind"] for e in payload["events"]]
            assert kinds[0] == "batch_start"
            assert kinds[-1] == "pool_crash"
        finally:
            backend.shutdown()

    def test_pool_crash_dump_disabled_by_kill_switch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FLEET_DUMPS", str(tmp_path / "dumps"))
        monkeypatch.setenv("REPRO_FLEET_LOG", "0")
        backend = PoolBackend(workers=1)
        backend.start()
        try:
            with pytest.raises(WorkerCrashError):
                list(backend.run_tasks(
                    [(0, "debug.crash", json.dumps({"code": 3}))],
                    batch_id="fr-pool-off",
                ))
            assert not (tmp_path / "dumps").exists()
        finally:
            backend.shutdown()
