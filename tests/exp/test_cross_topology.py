"""The cross-topology Figure 7 experiment: spec shape and point payloads."""

from __future__ import annotations

from repro.exp import (
    CROSS_TOPOLOGY_RATES,
    drift_spec,
    execute,
    figure7_cross_topology_spec,
)


class TestSpec:
    def test_grid_is_topology_by_rate(self):
        spec = figure7_cross_topology_spec(rates=(0.05, 0.1))
        assert spec.n_points == 3 * 2
        params = [pt.as_dict() for pt in spec.points()]
        assert {p["topology"] for p in params} == {
            "omega", "hypercube", "mesh",
        }
        assert all(p["pes"] == 16 for p in params)

    def test_default_rates_cover_the_knee(self):
        spec = figure7_cross_topology_spec()
        assert spec.n_points == 3 * len(CROSS_TOPOLOGY_RATES)

    def test_spec_hash_stable_across_processes(self):
        a = figure7_cross_topology_spec().spec_hash()
        b = figure7_cross_topology_spec().spec_hash()
        assert a == b

    def test_drift_spec_omega_base_unwidened(self):
        """The default drift spec must not grow a topology key — every
        pre-existing Omega sweep keeps its content address."""
        base = dict(drift_spec().base)
        assert "topology" not in base
        widened = dict(drift_spec(topology="mesh").base)
        assert widened["topology"] == "mesh"


class TestPointFunction:
    def _point(self, topology):
        return execute("fig7.cross_topology", {
            "pes": 16, "rate": 0.05, "cycles": 150,
            "topology": topology, "seed": 1,
        })

    def test_payload_pairs_observation_with_prediction(self):
        for topology in ("omega", "hypercube", "mesh"):
            payload = self._point(topology)
            assert payload["topology"] == topology
            assert payload["issued"] == payload["completed"] > 0
            assert payload["observed_mean_round_trip"] > 0
            assert payload["predicted_round_trip"] > 0
            # low load: simulation within the drift monitor's tolerance
            rel = abs(
                payload["observed_mean_round_trip"]
                - payload["predicted_round_trip"]
            ) / payload["predicted_round_trip"]
            assert rel < 0.25
            assert payload["n_switches"] > 0
            assert payload["n_links"] > 0

    def test_structural_facts_differ_by_fabric(self):
        omega = self._point("omega")
        mesh = self._point("mesh")
        assert omega["stages"] != mesh["stages"]
        assert omega["n_links"] != mesh["n_links"]
