"""ResultCache: content addressing, atomicity, invalidation."""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.exp import NullCache, ResultCache, default_cache_root
from repro.exp.spec import RESULTS_VERSION

KEY = "ab" + "0" * 62  # a well-formed 64-hex content address


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_get_put_round_trip(self, cache):
        payload = {"rows": [1, 2, 3], "label": "x"}
        cache.put(KEY, payload)
        assert cache.get(KEY) == payload
        assert cache.hits == 1

    def test_miss_on_absent_key(self, cache):
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_entries_sharded_by_prefix(self, cache):
        cache.put(KEY, {"v": 1})
        assert (cache.root / KEY[:2] / f"{KEY}.json").is_file()

    def test_version_mismatch_reads_as_miss(self, cache):
        cache.put(KEY, {"v": 1})
        path = cache.root / KEY[:2] / f"{KEY}.json"
        entry = json.loads(path.read_text())
        entry["version"] = "0.0.1"
        path.write_text(json.dumps(entry))
        assert cache.get(KEY) is None

    def test_corrupt_entry_is_miss_and_removed(self, cache):
        cache.put(KEY, {"v": 1})
        path = cache.root / KEY[:2] / f"{KEY}.json"
        path.write_text("{torn mid-wri")
        assert cache.get(KEY) is None
        assert not path.exists()  # cannot shadow the next write

    def test_put_leaves_no_temp_files(self, cache):
        cache.put(KEY, {"v": 1})
        leftovers = [
            name for name in os.listdir(cache.root / KEY[:2])
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_put_overwrites(self, cache):
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}

    def test_contains_len_clear(self, cache):
        other = "cd" + "1" * 62
        cache.put(KEY, {"v": 1})
        cache.put(other, {"v": 2})
        assert KEY in cache and other in cache
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert KEY not in cache

    def test_malformed_key_rejected(self, cache):
        for bad in ("", "xy", "ZZ" + "0" * 62, "../../etc/passwd"):
            with pytest.raises(ValueError):
                cache.get(bad)

    def test_entry_records_version_and_meta(self, cache):
        cache.put(KEY, {"v": 1}, meta={"experiment": "x"})
        entry = json.loads(
            (cache.root / KEY[:2] / f"{KEY}.json").read_text()
        )
        assert entry["version"] == RESULTS_VERSION
        assert entry["meta"] == {"experiment": "x"}


def _full_payload(writer: int) -> dict:
    # Large enough that a non-atomic write would be observably torn.
    return {"writer": writer, "rows": list(range(writer, writer + 2000))}


def _stress_writer(args):
    root, writer, rounds = args
    cache = ResultCache(root)
    for _ in range(rounds):
        cache.put(KEY, _full_payload(writer))
    return writer


def _stress_reader(args):
    root, rounds = args
    cache = ResultCache(root)
    torn = []
    observed = 0
    for _ in range(rounds):
        payload = cache.get(KEY)
        if payload is None:
            continue
        observed += 1
        expected = _full_payload(payload.get("writer", -1))
        if payload != expected:
            torn.append(payload)
    return observed, torn


class TestConcurrentWriters:
    """Atomicity under contention: many processes writing the *same*
    key must end last-writer-wins with no reader ever seeing a torn
    entry (the serving tier races exactly like this on shared points).
    """

    def test_corrupt_unlink_spares_a_concurrent_replacement(self, cache):
        """The get()-side race, deterministically: a reader that found
        a corrupt file must not unlink the valid entry a concurrent
        put() renamed into place after the read."""
        path = cache.root / KEY[:2] / f"{KEY}.json"
        path.parent.mkdir(parents=True)
        path.write_text("{torn mid-wri")
        stale = os.stat(path)  # what the reader's open handle saw
        cache.put(KEY, {"v": "fresh"})  # concurrent writer replaces it
        cache._discard_corrupt(path, stale)  # reader reacts to the corpse
        assert cache.get(KEY) == {"v": "fresh"}  # fresh write survived

    def test_corrupt_unlink_still_removes_unreplaced_corpse(self, cache):
        path = cache.root / KEY[:2] / f"{KEY}.json"
        path.parent.mkdir(parents=True)
        path.write_text("{torn mid-wri")
        cache._discard_corrupt(path, os.stat(path))
        assert not path.exists()

    def test_multiprocess_same_key_stress(self, tmp_path):
        root = tmp_path / "stress"
        n_writers, n_readers, rounds = 4, 3, 40
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=n_writers + n_readers, mp_context=ctx
        ) as pool:
            readers = [
                pool.submit(_stress_reader, (root, rounds * 3))
                for _ in range(n_readers)
            ]
            writers = [
                pool.submit(_stress_writer, (root, writer, rounds))
                for writer in range(n_writers)
            ]
            writer_ids = [f.result(timeout=120) for f in writers]
            outcomes = [f.result(timeout=120) for f in readers]
        assert sorted(writer_ids) == list(range(n_writers))
        for observed, torn in outcomes:
            assert torn == [], torn  # no reader ever saw a torn entry
        # last-writer-wins: the surviving entry is SOME writer's
        # complete payload, never an interleaving of two
        final = ResultCache(root).get(KEY)
        assert final == _full_payload(final["writer"])
        assert final["writer"] in set(writer_ids)
        # and no temp droppings survived the stampede
        leftovers = list(root.glob("**/*.tmp"))
        assert leftovers == []


class TestCounters:
    def test_traffic_counters_track_each_operation(self, cache):
        cache.get(KEY)                      # miss
        cache.put(KEY, {"v": 1})            # write
        cache.get(KEY)                      # hit
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] >= stats["bytes_written"]

    def test_corrupt_eviction_counted(self, cache):
        cache.put(KEY, {"v": 1})
        path = cache.root / KEY[:2] / f"{KEY}.json"
        path.write_text("{torn mid-wri")
        cache.get(KEY)
        assert cache.stats()["evicted_corrupt"] == 1

    def test_disk_stats_reflect_contents(self, cache):
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}
        cache.put(KEY, {"v": 1})
        cache.put("cd" + "1" * 62, {"v": 2})
        disk = cache.disk_stats()
        assert disk["entries"] == 2
        assert disk["bytes"] > 0
        cache.clear()
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}

    def test_null_cache_stats_stay_zero_except_misses(self):
        null = NullCache()
        null.put(KEY, {"v": 1})
        null.get(KEY)
        assert null.stats()["misses"] == 1
        assert null.stats()["writes"] == 0
        assert null.disk_stats() == {"entries": 0, "bytes": 0}


class TestDefaultRoot:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXP_CACHE", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_EXP_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro" / "exp"


class TestNullCache:
    def test_never_hits_never_writes(self, tmp_path):
        null = NullCache()
        null.put(KEY, {"v": 1})
        assert null.get(KEY) is None
        assert KEY not in null
        assert len(null) == 0
        assert null.clear() == 0
        assert null.misses == 1
