"""ResultCache: content addressing, atomicity, invalidation."""

from __future__ import annotations

import json
import os

import pytest

from repro.exp import NullCache, ResultCache, default_cache_root
from repro.exp.spec import RESULTS_VERSION

KEY = "ab" + "0" * 62  # a well-formed 64-hex content address


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_get_put_round_trip(self, cache):
        payload = {"rows": [1, 2, 3], "label": "x"}
        cache.put(KEY, payload)
        assert cache.get(KEY) == payload
        assert cache.hits == 1

    def test_miss_on_absent_key(self, cache):
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_entries_sharded_by_prefix(self, cache):
        cache.put(KEY, {"v": 1})
        assert (cache.root / KEY[:2] / f"{KEY}.json").is_file()

    def test_version_mismatch_reads_as_miss(self, cache):
        cache.put(KEY, {"v": 1})
        path = cache.root / KEY[:2] / f"{KEY}.json"
        entry = json.loads(path.read_text())
        entry["version"] = "0.0.1"
        path.write_text(json.dumps(entry))
        assert cache.get(KEY) is None

    def test_corrupt_entry_is_miss_and_removed(self, cache):
        cache.put(KEY, {"v": 1})
        path = cache.root / KEY[:2] / f"{KEY}.json"
        path.write_text("{torn mid-wri")
        assert cache.get(KEY) is None
        assert not path.exists()  # cannot shadow the next write

    def test_put_leaves_no_temp_files(self, cache):
        cache.put(KEY, {"v": 1})
        leftovers = [
            name for name in os.listdir(cache.root / KEY[:2])
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_put_overwrites(self, cache):
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}

    def test_contains_len_clear(self, cache):
        other = "cd" + "1" * 62
        cache.put(KEY, {"v": 1})
        cache.put(other, {"v": 2})
        assert KEY in cache and other in cache
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert KEY not in cache

    def test_malformed_key_rejected(self, cache):
        for bad in ("", "xy", "ZZ" + "0" * 62, "../../etc/passwd"):
            with pytest.raises(ValueError):
                cache.get(bad)

    def test_entry_records_version_and_meta(self, cache):
        cache.put(KEY, {"v": 1}, meta={"experiment": "x"})
        entry = json.loads(
            (cache.root / KEY[:2] / f"{KEY}.json").read_text()
        )
        assert entry["version"] == RESULTS_VERSION
        assert entry["meta"] == {"experiment": "x"}


class TestDefaultRoot:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXP_CACHE", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_EXP_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro" / "exp"


class TestNullCache:
    def test_never_hits_never_writes(self, tmp_path):
        null = NullCache()
        null.put(KEY, {"v": 1})
        assert null.get(KEY) is None
        assert KEY not in null
        assert len(null) == 0
        assert null.clear() == 0
        assert null.misses == 1
