"""Integration: failure injection and pressure tests.

Tiny queues, tiny wait buffers, and protocol violations — the system
must degrade by backpressure (slower), never by corruption (wrong
answers) or deadlock.
"""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load
from repro.network.interfaces import OutstandingConflictError


def counter_workload(machine, n_pes, rounds=6):
    def program(pe_id):
        for _ in range(rounds):
            yield FetchAdd(0, 1)
        return True

    machine.spawn_many(n_pes, program)


class TestTinyQueues:
    @pytest.mark.parametrize("capacity", [3, 6, 15])
    def test_correct_under_any_queue_size(self, capacity):
        machine = Ultracomputer(
            MachineConfig(n_pes=16, queue_capacity_packets=capacity)
        )
        counter_workload(machine, 16)
        machine.run()
        assert machine.peek(0) == 96

    def test_small_queues_are_slower_not_wrong(self):
        cycle_counts = {}
        for capacity in (3, 30):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, queue_capacity_packets=capacity,
                              combining=False)
            )
            counter_workload(machine, 16)
            stats = machine.run()
            cycle_counts[capacity] = stats.cycles
            assert machine.peek(0) == 96
        assert cycle_counts[3] >= cycle_counts[30]

    def test_paper_queue_size_close_to_infinite(self):
        """Section 4.2: 'queues of modest size (18) give essentially the
        same performance as infinite queues.'"""
        results = {}
        for capacity in (18, None):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, queue_capacity_packets=capacity)
            )
            counter_workload(machine, 16, rounds=10)
            stats = machine.run()
            results[capacity] = stats.cycles
        assert results[18] <= results[None] * 1.1


class TestTinyWaitBuffers:
    @pytest.mark.parametrize("capacity", [0, 1, 4, None])
    def test_correct_under_any_wait_buffer_size(self, capacity):
        machine = Ultracomputer(
            MachineConfig(n_pes=16, wait_buffer_capacity=capacity)
        )
        counter_workload(machine, 16)
        stats = machine.run()
        assert machine.peek(0) == 96
        if capacity == 0:
            assert stats.combines == 0  # combining fully suppressed

    def test_limited_wait_buffer_limits_combining(self):
        combines = {}
        for capacity in (1, None):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, wait_buffer_capacity=capacity)
            )
            counter_workload(machine, 16)
            combines[capacity] = machine.run().combines
        assert combines[1] <= combines[None]


class TestProtocolViolations:
    def test_second_reference_to_outstanding_cell_rejected(self):
        machine = Ultracomputer(MachineConfig(n_pes=4))
        pni = machine.pnis[0]
        pni.issue(Load(0), 0)
        with pytest.raises(OutstandingConflictError):
            pni.issue(FetchAdd(0, 1), 0)

    def test_blocking_program_driver_never_violates(self):
        """The coroutine PE driver issues one op at a time, so even a
        program hammering one cell cannot trip the PNI rule."""
        machine = Ultracomputer(MachineConfig(n_pes=4))

        def hammer(pe_id):
            for _ in range(20):
                yield FetchAdd(0, 1)
            return True

        machine.spawn_many(4, hammer)
        machine.run()
        assert machine.peek(0) == 80


class TestOutstandingWindow:
    def test_window_one_is_a_blocking_pe(self):
        machine = Ultracomputer(MachineConfig(n_pes=4, max_outstanding=1))
        counter_workload(machine, 4)
        machine.run()
        assert machine.peek(0) == 24

    def test_window_throttles_synthetic_traffic(self):
        from repro.workloads.synthetic import SyntheticTrafficDriver, TrafficSpec

        blocked_counts = {}
        for window in (1, None):
            machine = Ultracomputer(MachineConfig(n_pes=8, max_outstanding=window))
            driver = SyntheticTrafficDriver(
                machine, TrafficSpec(rate=0.5, seed=1)
            )
            machine.attach_driver(driver)
            machine.run_cycles(200)
            blocked_counts[window] = driver.blocked
        assert blocked_counts[1] > blocked_counts[None]
