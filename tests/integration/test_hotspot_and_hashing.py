"""Integration: combining under hot spots, hashing under strides.

These are the two traffic pathologies the paper's design answers
(sections 3.1.2–3.1.4), demonstrated end to end on the cycle machine.
"""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd
from repro.workloads.synthetic import (
    SyntheticTrafficDriver,
    TrafficSpec,
    run_uniform_traffic,
)


def hotspot_run(n_pes=16, combining=True, rounds=8):
    machine = Ultracomputer(MachineConfig(n_pes=n_pes, combining=combining))

    def program(pe_id):
        for _ in range(rounds):
            yield FetchAdd(0, 1)
        return True

    machine.spawn_many(n_pes, program)
    stats = machine.run()
    return machine, stats


class TestHotspotCombining:
    def test_combining_keeps_hot_cell_cheap(self):
        machine_on, stats_on = hotspot_run(combining=True)
        machine_off, stats_off = hotspot_run(combining=False)
        assert machine_on.peek(0) == machine_off.peek(0)
        # The headline claim: N concurrent references to one location in
        # roughly the time of one access — so the combined run is much
        # faster per reference and makes far fewer memory accesses.
        assert stats_on.memory_accesses * 2 < stats_off.memory_accesses
        assert stats_on.mean_round_trip < stats_off.mean_round_trip

    def test_hot_module_serialization_without_combining(self):
        machine_off, stats_off = hotspot_run(combining=False)
        # all traffic hits module 0; its access count equals requests
        assert machine_off.memory[0].accesses == stats_off.requests_issued

    def test_combining_rate_grows_with_machine_size(self):
        rates = []
        for n in (4, 16):
            _machine, stats = hotspot_run(n_pes=n)
            rates.append(stats.combining_rate)
        assert rates[1] > rates[0]


class TestHashingAblation:
    @pytest.mark.parametrize(
        "translation,expect_balanced",
        [("interleaved", False), ("hashed", True)],
    )
    def test_stride_traffic_module_balance(self, translation, expect_balanced):
        machine = Ultracomputer(
            MachineConfig(n_pes=16, translation=translation, words_per_module=64)
        )
        driver = SyntheticTrafficDriver(
            machine,
            TrafficSpec(rate=0.2, pattern="stride", stride=16, seed=2),
        )
        machine.attach_driver(driver)
        machine.run_cycles(400)
        imbalance = machine.memory.imbalance()
        if expect_balanced:
            assert imbalance < 3.0
        else:
            assert imbalance > 8.0  # everything lands on a few modules

    def test_hashing_lowers_stride_latency(self):
        latencies = {}
        for translation in ("interleaved", "hashed"):
            machine = Ultracomputer(
                MachineConfig(
                    n_pes=16, translation=translation, words_per_module=64
                )
            )
            driver = SyntheticTrafficDriver(
                machine,
                TrafficSpec(rate=0.15, pattern="stride", stride=16, seed=3),
            )
            machine.attach_driver(driver)
            machine.run_cycles(600)
            stats = driver.stats()
            latencies[translation] = stats.mean_latency
        assert latencies["hashed"] < latencies["interleaved"]


class TestUniformTraffic:
    def test_low_load_latency_near_minimum(self):
        stats, machine = run_uniform_traffic(16, rate=0.02, cycles=600, seed=1)
        # 4 stages each way + memory + injection: minimum ~12; queueing
        # at p=0.02 is negligible.
        assert stats.mean_latency < 20

    def test_latency_grows_with_load(self):
        low, _ = run_uniform_traffic(16, rate=0.05, cycles=600, seed=1)
        high, _ = run_uniform_traffic(16, rate=0.30, cycles=600, seed=1)
        assert high.mean_latency > low.mean_latency

    def test_throughput_scales_with_rate_below_capacity(self):
        """Design objective 1 on the real simulator: completed requests
        scale with offered load while below capacity."""
        completed = {}
        for rate in (0.05, 0.10):
            stats, _ = run_uniform_traffic(16, rate=rate, cycles=800, seed=4)
            completed[rate] = stats.completed
        assert completed[0.10] > completed[0.05] * 1.6
