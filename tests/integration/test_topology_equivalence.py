"""Differential regression: topologies are fabrics, kernels stay invisible.

Two guarantees at once.  First, the event kernel must remain a pure
optimization on *every* fabric: for any workload on the hypercube or
mesh, ``RunResult.to_dict()`` — cycles, combines, per-PE outcomes, the
instrumentation snapshot, and the cycle trace — must be bit-identical
to the dense reference kernel.  Second, the machine itself must behave
on the new fabrics: combining fires on hotspot traffic, fetch-and-add
totals are exact, and the batch kernel's Omega-only restriction is
enforced with an actionable error.
"""

from __future__ import annotations

import random

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store

TOPOLOGIES = ["hypercube", "mesh"]
GRID_N_PES = [4, 16]
ROUNDS = 5


def hotspot_program(pe_id, rounds=ROUNDS, seed=0):
    rng = random.Random((seed << 16) | pe_id)
    total = 0
    for _ in range(rounds):
        yield rng.randrange(1, 40)
        total += yield FetchAdd(0, 1)
    return total


def uniform_program(pe_id, rounds=ROUNDS, seed=0):
    rng = random.Random((seed << 16) | (pe_id + 1))
    base = 4096 + pe_id * 64
    acc = 0
    for i in range(rounds):
        yield rng.randrange(1, 25)
        yield Store(base + (i % 8), acc + i)
        acc += yield Load(base + (i % 8))
        acc += yield FetchAdd(rng.randrange(256, 512), pe_id + 1)
    return acc


PROGRAMS = {"hotspot": hotspot_program, "uniform": uniform_program}


def _run(topology, n_pes, kernel, pattern, seed, **overrides):
    machine = Ultracomputer(MachineConfig(
        n_pes=n_pes,
        topology=topology,
        kernel=kernel,
        instrument=True,
        trace_capacity=1 << 14,
        **overrides,
    ))
    machine.spawn_many(n_pes, PROGRAMS[pattern], ROUNDS, seed)
    return machine.run().to_dict()


@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestKernelEquivalenceOffOmega:
    @pytest.mark.parametrize("n_pes", GRID_N_PES)
    @pytest.mark.parametrize("pattern", ["hotspot", "uniform"])
    def test_event_identical_to_dense(self, topology, n_pes, pattern):
        dense = _run(topology, n_pes, "dense", pattern, seed=11)
        event = _run(topology, n_pes, "event", pattern, seed=11)
        assert dense == event

    def test_identical_with_finite_queues_and_window(self, topology):
        kwargs = dict(queue_capacity_packets=4, max_outstanding=2)
        dense = _run(topology, 16, "dense", "uniform", seed=5, **kwargs)
        event = _run(topology, 16, "event", "uniform", seed=5, **kwargs)
        assert dense == event

    def test_identical_without_combining(self, topology):
        dense = _run(topology, 16, "dense", "hotspot", seed=3, combining=False)
        event = _run(topology, 16, "event", "hotspot", seed=3, combining=False)
        assert dense == event


@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestFabricSemantics:
    def test_hotspot_totals_exact_and_combining_fires(self, topology):
        machine = Ultracomputer(MachineConfig(n_pes=16, topology=topology))

        def program(pe_id):
            for _ in range(4):
                yield FetchAdd(0, 1)

        machine.spawn_many(16, program)
        result = machine.run()
        assert machine.peek(0) == 64
        assert result.combines > 0

    def test_combining_ablation_changes_traffic_not_results(self, topology):
        totals = {}
        for combining in (True, False):
            machine = Ultracomputer(MachineConfig(
                n_pes=16, topology=topology, combining=combining,
            ))

            def program(pe_id):
                values = []
                for _ in range(3):
                    values.append((yield FetchAdd(7, 1)))
                return values

            machine.spawn_many(16, program)
            result = machine.run()
            totals[combining] = machine.peek(7)
            if combining:
                assert result.combines > 0
            else:
                assert result.combines == 0
        assert totals[True] == totals[False] == 48


def test_batch_kernel_rejected_off_omega():
    with pytest.raises(ValueError, match="kernel 'batch' supports only"):
        Ultracomputer(MachineConfig(n_pes=16, topology="hypercube",
                                    kernel="batch"))
