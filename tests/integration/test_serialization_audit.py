"""Property-based audit: the full machine obeys the serialization
principle under randomized workloads.

Hypothesis generates random per-PE fetch-and-add/swap/store workloads;
after the run, every touched cell's observable history must be
consistent with *some* serial order — checked with the special-case
validators, since enumerating interleavings of whole executions is
infeasible.  This is the strongest end-to-end statement the tests make
about the combining network: no combination of switch queueing,
pairwise combining, decombining, and module scheduling may ever
fabricate, lose, or duplicate an operation.
"""

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store, Swap
from repro.core.paracomputer import Paracomputer
from repro.core.serialization import fetch_add_outcome_valid

#: Small search space keeps each hypothesis example fast while still
#: exercising combining (few cells => frequent collisions).
cells = st.integers(min_value=0, max_value=2)
increments = st.integers(min_value=-3, max_value=3)
pe_workloads = st.lists(
    st.lists(st.tuples(cells, increments), min_size=1, max_size=4),
    min_size=2,
    max_size=4,
)


def fetch_add_program(pe_id, workload, journal):
    for cell, increment in workload:
        old = yield FetchAdd(cell, increment)
        journal.append((cell, increment, old))
    return True


class TestFetchAddAudit:
    @settings(max_examples=25, deadline=None)
    @given(pe_workloads, st.booleans())
    def test_machine_histories_serializable(self, workloads, combining):
        machine = Ultracomputer(
            MachineConfig(n_pes=4, combining=combining)
        )
        journal: list[tuple[int, int, int]] = []
        for workload in workloads:
            machine.spawn(fetch_add_program, workload, journal)
        machine.run(500_000)

        by_cell: dict[int, list[tuple[int, int]]] = {}
        for cell, increment, old in journal:
            by_cell.setdefault(cell, []).append((increment, old))
        for cell, records in by_cell.items():
            incs = [increment for increment, _ in records]
            olds = [old for _, old in records]
            assert fetch_add_outcome_valid(
                0, incs, olds, machine.peek(cell)
            ), f"cell {cell}: history {records} not serializable"

    @settings(max_examples=25, deadline=None)
    @given(pe_workloads)
    def test_machine_and_paracomputer_agree_on_finals(self, workloads):
        finals = {}
        for name, machine in (
            ("para", Paracomputer(seed=1)),
            ("ultra", Ultracomputer(MachineConfig(n_pes=4))),
        ):
            journal: list = []
            for workload in workloads:
                machine.spawn(fetch_add_program, workload, journal)
            if name == "para":
                machine.run(100_000)
            else:
                machine.run(500_000)
            finals[name] = {
                cell: machine.peek(cell) for cell in range(3)
            }
        assert finals["para"] == finals["ultra"]


class TestSwapAudit:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(0, 1000))
    def test_swap_chain_conserves_tokens(self, n_pes_exp, seed):
        """Random simultaneous swaps on one cell: the multiset
        {initial value} + {tokens} is conserved between the final cell
        value and the returned values."""
        n = min(8, max(2, n_pes_exp))
        machine = Ultracomputer(MachineConfig(n_pes=8))
        machine.poke(0, 999)

        def swapper(pe_id, token):
            received = yield Swap(0, token)
            return received

        for pe in range(n):
            machine.spawn(swapper, 1000 + pe)
        machine.run(200_000)
        received = [
            machine.programs.return_values[pe] for pe in range(n)
        ]
        conserved = sorted(received + [machine.peek(0)])
        assert conserved == sorted([999] + [1000 + pe for pe in range(n)])


class TestStoreLoadAudit:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(1, 100), min_size=2, max_size=6),
        st.booleans(),
    )
    def test_final_value_is_one_of_the_stores(self, values, combining):
        machine = Ultracomputer(MachineConfig(n_pes=8, combining=combining))

        def storer(pe_id, value):
            yield Store(0, value)
            return True

        for i, value in enumerate(values):
            machine.spawn(storer, value)
        machine.run(200_000)
        assert machine.peek(0) in values

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(1, 100), min_size=1, max_size=5))
    def test_load_sees_initial_or_some_store(self, values):
        machine = Ultracomputer(MachineConfig(n_pes=8))
        machine.poke(0, 7777)

        def storer(pe_id, value):
            yield Store(0, value)
            return True

        def loader(pe_id):
            value = yield Load(0)
            return value

        for value in values:
            machine.spawn(storer, value)
        machine.spawn(loader)
        machine.run(200_000)
        seen = machine.programs.return_values[len(values)]
        assert seen in [7777] + values
