"""Integration tests for the less-traveled paths: dynamic spawning,
MNI backpressure, per-cycle serializability audits, and the complete
parallel TRED2 running on the cycle-accurate machine."""

import numpy as np
import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.core.paracomputer import Paracomputer
from repro.core.serialization import BatchOutcome, apply_serially, is_serializable


class TestDynamicSpawning:
    def test_program_can_spawn_programs(self):
        """Spawning from inside a running program (the decentralized-OS
        pattern: a task creating subtasks at runtime)."""
        para = Paracomputer(seed=2)

        def child(pe_id, value):
            yield FetchAdd(0, value)
            return value

        def parent(pe_id):
            yield FetchAdd(0, 1)
            for value in (10, 20):
                para.spawn(child, value)
            yield None
            return True

        para.spawn(parent)
        stats = para.run(10_000)
        assert all(r.finished for r in stats.per_pe.values())
        assert para.peek(0) == 31
        assert para.n_pes == 3


class TestMNIBackpressure:
    def test_tiny_mni_buffers_still_correct(self):
        machine = Ultracomputer(
            MachineConfig(n_pes=8, mni_inbound_capacity_packets=3)
        )

        def program(pe_id):
            for _ in range(5):
                yield FetchAdd(0, 1)
            return True

        machine.spawn_many(8, program)
        machine.run(2_000_000)
        assert machine.peek(0) == 40

    def test_backpressure_slows_the_hot_module(self):
        def run(capacity):
            machine = Ultracomputer(
                MachineConfig(
                    n_pes=8,
                    combining=False,
                    mni_inbound_capacity_packets=capacity,
                )
            )

            def program(pe_id):
                for _ in range(5):
                    yield FetchAdd(0, 1)
                return True

            machine.spawn_many(8, program)
            return machine.run(2_000_000).cycles

        assert run(3) >= run(None)


class TestPerCycleSerializability:
    def test_every_audited_cycle_matches_a_serial_order(self):
        """The paracomputer's witness, checked cycle by cycle against
        the full serialization-principle acceptance test (not just the
        final memory image)."""
        para = Paracomputer(seed=6, audit=True)

        def mixed(pe_id):
            old = yield FetchAdd(0, pe_id + 1)
            yield Store(1, old)
            value = yield Load(1)
            yield FetchAdd(0, -1)
            return value

        para.spawn_many(4, mixed)
        para.run(10_000)

        memory: dict[int, int] = {}
        for ops, order in para.witness.cycles:
            before = dict(memory)
            outcome = apply_serially(before, list(ops), list(order))
            # the recorded order must itself be an accepted serialization
            assert is_serializable(before, list(ops), outcome)
            for address, value in outcome.final.items():
                memory[address] = value
        for address, value in memory.items():
            assert para.peek(address) == value


class TestTred2OnTheRealMachine:
    def test_parallel_tred2_runs_on_the_ultracomputer(self):
        """The flagship integration: the actual Householder reduction,
        self-scheduled by fetch-and-add with barriers, computing the
        numerically-correct answer through the combining network."""
        from repro.apps.tred2 import (
            Tred2Layout,
            Tred2Measurement,
            extract_tridiagonal,
            parallel_tred2_program,
            random_symmetric,
            tridiagonal_matrix,
        )

        n, processors = 6, 2
        matrix = random_symmetric(n, seed=9)
        machine = Ultracomputer(MachineConfig(n_pes=2))
        layout = Tred2Layout(n=n)
        for i in range(n):
            for j in range(n):
                machine.poke(layout.a(i, j), float(matrix[i, j]))
        meas = Tred2Measurement()
        machine.spawn_many(
            processors, parallel_tred2_program, layout, processors, meas
        )
        machine.run(5_000_000)

        class _Peeker:
            def __init__(self, m):
                self.m = m

            def peek(self, address):
                return self.m.peek(address)

        d, e = extract_tridiagonal(_Peeker(machine), layout)
        original = np.sort(np.linalg.eigvalsh(matrix))
        reduced = np.sort(np.linalg.eigvalsh(tridiagonal_matrix(d, e)))
        assert float(np.max(np.abs(original - reduced))) < 1e-8


class TestExceptionSafety:
    def test_write_section_releases_on_body_failure(self):
        from repro.algorithms.readers_writers import RWLock, write_section

        lock = RWLock(address=0)
        para = Paracomputer(seed=1)

        def failing_body():
            yield Load(5)
            raise RuntimeError("body exploded")

        def program(pe_id):
            try:
                yield from write_section(lock, failing_body())
            except RuntimeError:
                pass
            value = yield Load(lock.address)
            return value

        para.spawn(program)
        stats = para.run(10_000)
        assert stats.per_pe[0].return_value == 0  # lock fully released
