"""Integration: the three performance models agree where they overlap.

The repository carries an analytic model (section 4.1), a queueing-model
simulator (section 4.2), and the cycle-accurate machine.  At low traffic
on a common configuration their latencies must line up — the paper's own
sanity chain ("our preliminary analyses and partial simulations have
yielded encouraging results").
"""

import pytest

from repro.analysis.queueing import round_trip_time
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import Load
from repro.network.stochastic import StochasticConfig, StochasticNetwork
from repro.workloads.synthetic import run_uniform_traffic


class TestUnloadedAgreement:
    def test_cycle_machine_matches_analytic_minimum(self):
        """Unloaded analytic round trip vs the cycle machine's measured
        single-request latency (16 PEs, k=2, 1-packet requests)."""
        machine = Ultracomputer(MachineConfig(n_pes=16))

        def program(pe_id):
            yield Load(0)

        machine.spawn(program)
        stats = machine.run()
        analytic = round_trip_time(16, 2, 1, 0.0, mm_latency=2)
        # allow the reply's extra packets and interface overheads
        assert stats.mean_round_trip == pytest.approx(analytic, abs=5)

    def test_stochastic_matches_cycle_machine_single_request(self):
        """Same (n=16, k=4) configuration on both simulators: one
        request through an empty system."""
        machine = Ultracomputer(MachineConfig(n_pes=16, k=4))

        def program(pe_id):
            yield Load(0)

        machine.spawn(program)
        cycle_stats = machine.run()

        model = StochasticNetwork(
            StochasticConfig(n_ports=16, k=4, service_jitter=0.0)
        )
        modeled = model.round_trip(0, 0, 0.0).round_trip
        assert cycle_stats.mean_round_trip == pytest.approx(modeled, abs=4)


class TestLoadedShapeAgreement:
    def test_latency_vs_load_curves_move_together(self):
        """Measured latency on the cycle machine and the analytic T(p)
        must both rise with p, and the measured increase should be the
        same order as the analytic one."""
        measured = {}
        for rate in (0.05, 0.25):
            stats, _ = run_uniform_traffic(
                16, rate=rate, cycles=1500, seed=7, queue_capacity_packets=None
            )
            measured[rate] = stats.mean_latency
        analytic_low = round_trip_time(16, 2, 2, 0.05)
        analytic_high = round_trip_time(16, 2, 2, 0.25)
        measured_delta = measured[0.25] - measured[0.05]
        analytic_delta = analytic_high - analytic_low
        assert measured_delta > 0
        assert analytic_delta > 0
        # Same order of magnitude: the analytic model ignores the
        # 3-packet replies, so the measured rise runs a few times hotter.
        assert measured_delta < 6 * analytic_delta + 5

    def test_stochastic_and_cycle_rank_hotspots_identically(self):
        """Both simulators must agree that hot-module traffic is slower
        than uniform traffic."""
        # stochastic
        model_uniform = StochasticNetwork(
            StochasticConfig(n_ports=16, k=4, service_jitter=0.0)
        )
        model_hot = StochasticNetwork(
            StochasticConfig(n_ports=16, k=4, service_jitter=0.0)
        )
        uniform_latency = sum(
            model_uniform.round_trip(pe, pe, 0.0).round_trip for pe in range(16)
        )
        hot_latency = sum(
            model_hot.round_trip(pe, 3, 0.0).round_trip for pe in range(16)
        )
        assert hot_latency > uniform_latency

        # cycle machine (combining off to expose the raw hot module)
        def run_pattern(addresses):
            machine = Ultracomputer(
                MachineConfig(n_pes=16, combining=False, translation="blocked",
                              words_per_module=16)
            )

            def program(pe_id, target):
                yield Load(target)

            for pe, address in enumerate(addresses):
                machine.spawn(program, address)
            return machine.run().mean_round_trip

        uniform_cycle = run_pattern([pe * 16 for pe in range(16)])
        hot_cycle = run_pattern([3 * 16 + pe for pe in range(16)])
        assert hot_cycle > uniform_cycle
