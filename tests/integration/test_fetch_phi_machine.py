"""Fetch-and-phi as the sole memory primitive, on real hardware.

Section 2.4 proves load, store, swap, and test-and-set are degenerate
fetch-and-phis, and section 3.1.3 notes "a straightforward
generalization of the above design yields a network implementing the
fetch-and-phi primitive for any associative operator phi."  These tests
drive general fetch-and-phi operations — including mixed combinable
kinds — through the cycle-accurate combining network.
"""

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import (
    FetchPhi,
    Load,
    PHI_OPERATORS,
    Store,
    Swap,
    TestAndSet,
    as_fetch_phi,
)


class TestPhiThroughTheNetwork:
    def test_concurrent_fetch_max_combines(self):
        machine = Ultracomputer(MachineConfig(n_pes=8))
        phi = PHI_OPERATORS["max"]

        def program(pe_id):
            old = yield FetchPhi(0, pe_id * 10, phi)
            return old

        machine.spawn_many(8, program)
        stats = machine.run()
        assert machine.peek(0) == 70  # max of {0,10,...,70}
        assert stats.combines > 0  # homogeneous phis combined en route
        # every returned value is a prefix-max of some serialization:
        # all are maxima of subsets, so all are in {0,10,...,70}
        for value in machine.programs.return_values.values():
            assert value in range(0, 71)

    def test_test_and_set_storm_elects_exactly_one(self):
        machine = Ultracomputer(MachineConfig(n_pes=16))

        def contender(pe_id):
            was_set = yield TestAndSet(0)
            return was_set == 0  # winner saw clear

        machine.spawn_many(16, contender)
        machine.run()
        winners = sum(
            1 for v in machine.programs.return_values.values() if v
        )
        assert winners == 1
        assert machine.peek(0) == 1

    def test_fetch_or_accumulates_flags(self):
        machine = Ultracomputer(MachineConfig(n_pes=8))
        phi = PHI_OPERATORS["or"]

        def program(pe_id):
            yield FetchPhi(0, 1 << pe_id, phi)
            return True

        machine.spawn_many(8, program)
        machine.run()
        assert machine.peek(0) == 0xFF

    def test_swap_and_load_combine(self):
        """Heterogeneous combinable pair (Load alongside Swap) through
        the network: values conserved, loads see a legal value."""
        machine = Ultracomputer(MachineConfig(n_pes=8))
        machine.poke(0, 500)

        def swapper(pe_id):
            got = yield Swap(0, 600 + pe_id)
            return got

        def loader(pe_id):
            got = yield Load(0)
            return got

        for _ in range(4):
            machine.spawn(swapper)
        for _ in range(4):
            machine.spawn(loader)
        machine.run()
        tokens = [600, 601, 602, 603]
        swap_returns = [
            machine.programs.return_values[pe] for pe in range(4)
        ]
        load_returns = [
            machine.programs.return_values[pe] for pe in range(4, 8)
        ]
        conserved = sorted(swap_returns + [machine.peek(0)])
        assert conserved == sorted([500] + tokens)
        for value in load_returns:
            assert value in [500] + tokens


class TestSolePrimitiveEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["load", "store", "swap"]),
                      st.integers(0, 50)),
            min_size=1,
            max_size=4,
        )
    )
    def test_programs_rewritten_as_fetch_phi_behave_identically(self, script):
        """Run the same per-PE script twice — once with native ops, once
        with every op normalized to fetch-and-phi — and compare final
        memory (section 2.4's 'sole primitive' claim, on hardware)."""

        def native(pe_id):
            for kind, value in script:
                if kind == "load":
                    yield Load(0)
                elif kind == "store":
                    yield Store(0, value)
                else:
                    yield Swap(0, value)
            return True

        def normalized(pe_id):
            for kind, value in script:
                if kind == "load":
                    yield as_fetch_phi(Load(0))
                elif kind == "store":
                    op = as_fetch_phi(Store(0, value))
                    yield op
                else:
                    yield as_fetch_phi(Swap(0, value))
            return True

        finals = {}
        for name, program in (("native", native), ("phi", normalized)):
            machine = Ultracomputer(MachineConfig(n_pes=4))
            machine.poke(0, 7)
            machine.spawn(program)  # single PE: deterministic order
            machine.run(200_000)
            finals[name] = machine.peek(0)
        assert finals["native"] == finals["phi"]
