"""Differential regression: the optimized kernels must be invisible.

``MachineConfig(kernel="event")`` and ``MachineConfig(kernel="batch")``
are optimizations, not model changes: for any workload each must
produce a ``RunResult`` whose ``to_dict()`` — cycles, combines, per-PE
outcomes, the full instrumentation snapshot, and the cycle trace — is
bit-identical to the dense reference kernel.  These tests sweep a
seeded grid of machine sizes, traffic shapes, and cache settings and
compare each optimized kernel against dense; any divergence is a
kernel bug by definition.
"""

from __future__ import annotations

import random

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.pe.cached import CachedProgramDriver
from repro.workloads.synthetic import SyntheticTrafficDriver, TrafficSpec

GRID_N_PES = [4, 16, 64]
OPTIMIZED_KERNELS = ["event", "batch"]
ROUNDS = 6


def hotspot_program(pe_id, rounds=ROUNDS, seed=0):
    """Every PE hammers one cell with fetch-and-adds (combining-heavy),
    interleaved with seeded compute gaps so the event kernel actually
    fast-forwards."""
    rng = random.Random((seed << 16) | pe_id)
    total = 0
    for _ in range(rounds):
        yield rng.randrange(1, 40)
        total += yield FetchAdd(0, 1)
    return total


def uniform_program(pe_id, rounds=ROUNDS, seed=0):
    """Seeded uniform load/store traffic with private accumulators."""
    rng = random.Random((seed << 16) | (pe_id + 1))
    base = 4096 + pe_id * 64
    acc = 0
    for i in range(rounds):
        yield rng.randrange(1, 25)
        yield Store(base + (i % 8), acc + i)
        acc += yield Load(base + (i % 8))
        acc += yield FetchAdd(rng.randrange(256, 512), pe_id + 1)
    return acc


PROGRAMS = {"hotspot": hotspot_program, "uniform": uniform_program}


def _machine(n_pes: int, kernel: str, **overrides) -> Ultracomputer:
    config = MachineConfig(
        n_pes=n_pes,
        kernel=kernel,
        instrument=True,
        trace_capacity=1 << 14,
        **overrides,
    )
    return Ultracomputer(config)


def _run_programs(n_pes: int, kernel: str, pattern: str, seed: int, **overrides):
    machine = _machine(n_pes, kernel, **overrides)
    machine.spawn_many(n_pes, PROGRAMS[pattern], ROUNDS, seed)
    return machine.run().to_dict()


def _run_cached(n_pes: int, kernel: str, pattern: str, seed: int):
    machine = _machine(n_pes, kernel)
    driver = CachedProgramDriver(machine, cache_lines=4)
    driver.spawn_many(n_pes, PROGRAMS[pattern], ROUNDS, seed)
    machine.attach_driver(driver)
    result = machine.run().to_dict()
    # Cache-side outcomes are not part of RunResult; fold them in so the
    # comparison also pins hit counts and per-PE return values.
    result["_cache"] = {
        "network_refs": driver.total_network_refs,
        "cache_hits": driver.total_cache_hits,
        "return_values": sorted(driver.return_values.items()),
    }
    return result


@pytest.mark.parametrize("kernel", OPTIMIZED_KERNELS)
class TestUncachedGrid:
    @pytest.mark.parametrize("n_pes", GRID_N_PES)
    @pytest.mark.parametrize("pattern", ["hotspot", "uniform"])
    def test_identical_to_dense(self, kernel, n_pes, pattern):
        dense = _run_programs(n_pes, "dense", pattern, seed=11)
        other = _run_programs(n_pes, kernel, pattern, seed=11)
        assert dense == other

    @pytest.mark.parametrize("n_pes", [4, 16])
    def test_identical_with_finite_queues_and_window(self, kernel, n_pes):
        kwargs = dict(queue_capacity_packets=4, max_outstanding=2)
        dense = _run_programs(n_pes, "dense", "uniform", seed=5, **kwargs)
        other = _run_programs(n_pes, kernel, "uniform", seed=5, **kwargs)
        assert dense == other

    def test_identical_across_network_copies(self, kernel):
        dense = _run_programs(16, "dense", "hotspot", seed=9, copies=2)
        other = _run_programs(16, kernel, "hotspot", seed=9, copies=2)
        assert dense == other


@pytest.mark.parametrize("kernel", OPTIMIZED_KERNELS)
class TestCachedGrid:
    @pytest.mark.parametrize("n_pes", GRID_N_PES)
    @pytest.mark.parametrize("pattern", ["hotspot", "uniform"])
    def test_identical_to_dense(self, kernel, n_pes, pattern):
        dense = _run_cached(n_pes, "dense", pattern, seed=23)
        other = _run_cached(n_pes, kernel, pattern, seed=23)
        assert dense == other


class TestOpenLoopTraffic:
    """Stochastic open-loop drivers have no wake contract: the sparse
    kernels must fall back to executing every cycle, keeping the RNG
    draw sequence — and therefore everything downstream — identical."""

    @pytest.mark.parametrize("kernel", OPTIMIZED_KERNELS)
    @pytest.mark.parametrize("pattern", ["uniform", "hotspot"])
    def test_run_cycles_identical(self, kernel, pattern):
        results = []
        for name in ("dense", kernel):
            machine = _machine(16, name)
            machine.attach_driver(
                SyntheticTrafficDriver(
                    machine, TrafficSpec(rate=0.05, pattern=pattern, seed=7)
                )
            )
            results.append(machine.run_cycles(400).to_dict())
        assert results[0] == results[1]


class TestTimeoutParity:
    def test_same_timeout_error_and_counters(self):
        def stuck(pe_id):
            yield 10_000  # still computing at the deadline
            yield FetchAdd(0, 1)

        messages = []
        counters = []
        for kernel in ("dense", "event", "batch"):
            machine = _machine(4, kernel)
            machine.spawn_many(4, stuck)
            with pytest.raises(RuntimeError) as excinfo:
                machine.run(max_cycles=500)
            messages.append(str(excinfo.value))
            counters.append((machine.cycle, machine.stats().to_dict()))
        assert messages[0] == messages[1] == messages[2]
        assert counters[0] == counters[1] == counters[2]


class TestKernelProgress:
    def test_event_kernel_fast_forwards(self):
        """The event kernel must actually skip quiet cycles: a workload
        that is almost all compute finishes in the same simulated time
        while executing far fewer real cycles (observable via the
        machine's step count through a counting subclass)."""
        machine = _machine(4, "event")
        steps = 0
        original_step = machine.kernel.step

        def counting_step():
            nonlocal steps
            steps += 1
            original_step()

        machine.kernel.step = counting_step

        def mostly_quiet(pe_id):
            for _ in range(3):
                yield 200
                yield FetchAdd(0, 1)

        machine.spawn_many(4, mostly_quiet)
        result = machine.run()
        assert result.cycles > 600  # simulated time covers the gaps
        assert steps < result.cycles / 3  # but most cycles were skipped
