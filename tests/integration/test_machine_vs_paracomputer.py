"""Integration: the Ultracomputer 'appears to the user as a paracomputer'.

The same coroutine programs run on both machines; schedule-independent
outcomes (conserved counters, per-PE private results, data-structure
contents) must agree exactly.
"""

import pytest

from repro.algorithms import QueueLayout, delete, insert
from repro.algorithms.barrier import Barrier, wait
from repro.algorithms.scheduler import (
    SchedulerLayout,
    make_fanout_workload,
    seed_direct,
    worker,
)
from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.core.paracomputer import Paracomputer


def both_machines(n_pes=8):
    return [
        ("paracomputer", Paracomputer(seed=5)),
        ("machine", Ultracomputer(MachineConfig(n_pes=n_pes))),
    ]


def run(machine, cycles=3_000_000):
    if isinstance(machine, Paracomputer):
        return machine.run(200_000)
    return machine.run(cycles)


class TestSharedCounterEquivalence:
    def test_final_counter_identical(self):
        def program(pe_id, rounds):
            for _ in range(rounds):
                yield FetchAdd(0, 1)
            return True

        finals = {}
        for name, machine in both_machines():
            machine.spawn_many(8, program, 10)
            run(machine)
            finals[name] = machine.peek(0)
        assert finals["paracomputer"] == finals["machine"] == 80


class TestDistinctIndexEquivalence:
    def test_claimed_slots_form_permutation(self):
        """The shared-index idiom: each PE writes its id into the slot
        its F&A returned; both machines end with a permutation."""

        def program(pe_id, claims):
            for _ in range(claims):
                slot = yield FetchAdd(0, 1)
                yield Store(100 + slot, pe_id)
            return True

        for name, machine in both_machines():
            machine.spawn_many(8, program, 4)
            run(machine)
            slots = [machine.peek(100 + i) for i in range(32)]
            assert machine.peek(0) == 32
            # every slot written exactly once by some PE
            assert all(0 <= owner < 8 for owner in slots)
            counts = [slots.count(pe) for pe in range(8)]
            assert counts == [4] * 8, name


class TestQueueEquivalence:
    def test_queue_contents_conserved_on_both(self):
        queue = QueueLayout(base=50, capacity=16)

        def producer(pe_id, items):
            for item in items:
                while not (yield from insert(queue, item)):
                    pass
            return True

        def consumer(pe_id, count, sink):
            taken = 0
            while taken < count:
                item = yield from delete(queue)
                if item is not None:
                    sink.append(item)
                    taken += 1
            return True

        for name, machine in both_machines():
            sink: list = []
            for pe in range(4):
                machine.spawn(producer, list(range(pe * 10, pe * 10 + 8)))
            for pe in range(4):
                machine.spawn(consumer, 8, sink)
            run(machine)
            expected = sorted(x for pe in range(4) for x in range(pe * 10, pe * 10 + 8))
            assert sorted(sink) == expected, name


class TestBarrierEquivalence:
    def test_generation_count_matches(self):
        for name, machine in both_machines():
            barrier = Barrier(base=0, participants=8)

            def program(pe_id):
                for _ in range(4):
                    yield from wait(barrier)
                return True

            machine.spawn_many(8, program)
            run(machine)
            assert machine.peek(barrier.sense) == 4, name


class TestSchedulerEquivalence:
    def test_task_sets_identical(self):
        task_fn, roots, total = make_fanout_workload(3, 2)
        for name, machine in both_machines():
            layout = SchedulerLayout.at(base=0, capacity=64)
            seed_direct(layout, roots, machine.poke)

            def run_worker(pe_id):
                trace = yield from worker(pe_id, layout, task_fn)
                return trace

            machine.spawn_many(8, run_worker)
            run(machine)
            if isinstance(machine, Paracomputer):
                values = [
                    r.return_value
                    for r in machine.stats().per_pe.values()
                    if r.finished
                ]
            else:
                values = machine.programs.return_values.values()
            executed = sorted(t for v in values for t in v.executed)
            assert executed == list(range(total)), name
