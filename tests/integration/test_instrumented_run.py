"""Integration: instrumentation agrees with the machine's own bookkeeping.

The hot-spot workload (every PE fetch-and-adds one shared cell) drives
the combining network hard, so the per-stage counters, histograms, and
trace must reconcile exactly with the aggregate RunResult fields.
"""

from repro import FetchAdd, MachineConfig, Ultracomputer


def _run(pes=16, rounds=4, **config):
    machine = Ultracomputer(MachineConfig(n_pes=pes, instrument=True, **config))

    def program(pe_id):
        for _ in range(rounds):
            yield FetchAdd(0, 1)

    machine.spawn_many(pes, program)
    return machine.run()


class TestMetricsReconcile:
    def test_per_stage_combines_sum_to_total(self):
        result = _run()
        by_stage = result.metrics.by_label("network.combines", "stage")
        assert by_stage, "hot-spot run must combine at every stage"
        assert sum(by_stage.values()) == result.combines
        # a hot spot halves traffic at each stage: stage 0 combines most
        stages = sorted(by_stage)
        counts = [by_stage[s] for s in stages]
        assert counts == sorted(counts, reverse=True)

    def test_decombines_match_combines(self):
        result = _run()
        assert result.metrics.total("network.decombines") == result.combines
        assert result.decombines == result.combines

    def test_round_trip_histogram_counts_replies(self):
        result = _run()
        histogram = result.metrics.histogram("machine.round_trip_cycles")
        assert histogram is not None
        assert histogram.count == result.replies_received
        assert histogram.mean == result.mean_round_trip

    def test_requests_counter_matches(self):
        result = _run()
        assert (
            result.metrics.counter("machine.requests_issued")
            == result.requests_issued
        )

    def test_memory_access_counters_sum(self):
        result = _run()
        assert result.metrics.total("memory.accesses") == result.memory_accesses

    def test_disabled_machine_has_empty_metrics(self):
        machine = Ultracomputer(MachineConfig(n_pes=8))

        def program(pe_id):
            yield FetchAdd(0, 1)

        machine.spawn_many(8, program)
        result = machine.run()
        assert len(result.metrics) == 0
        assert len(machine.instrumentation.registry) == 0


class TestTraceReconciles:
    def test_issue_and_reply_events_match_counters(self):
        result = _run(pes=8, rounds=2, trace_capacity=100_000)
        issues = [e for e in result.trace if e.kind == "issue"]
        replies = [e for e in result.trace if e.kind == "reply"]
        assert len(issues) == result.requests_issued
        assert len(replies) == result.replies_received

    def test_combine_events_match_counter(self):
        result = _run(pes=8, rounds=2, trace_capacity=100_000)
        combines = [e for e in result.trace if e.kind == "combine"]
        assert len(combines) == result.combines

    def test_events_are_cycle_ordered_per_tag(self):
        result = _run(pes=4, rounds=2, trace_capacity=100_000)
        # every issued tag must see its reply strictly later
        issue_cycle = {e.tag: e.cycle for e in result.trace if e.kind == "issue"}
        for event in result.trace:
            if event.kind == "reply":
                assert event.cycle > issue_cycle[event.tag]

    def test_ring_buffer_cap_respected(self):
        result = _run(pes=16, rounds=4, trace_capacity=32)
        assert len(result.trace) == 32


class TestAcrossConfigurations:
    def test_multi_copy_network_aggregates_per_stage(self):
        result = _run(copies=2)
        by_stage = result.metrics.by_label("network.combines", "stage")
        assert sum(by_stage.values()) == result.combines

    def test_serialized_network_reports_zero_combines(self):
        result = _run(combining=False)
        assert result.combines == 0
        assert result.metrics.total("network.combines") == 0
        assert result.memory_accesses == result.requests_issued
