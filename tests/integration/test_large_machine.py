"""Confidence tests at larger machine scales (64-port, both switch
arities) — slower than the unit tests but still seconds, they exercise
deep networks, multi-stage combining trees, and heavy concurrency."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd, Load, Store
from repro.core.serialization import fetch_add_outcome_valid


class TestSixtyFourPEs:
    @pytest.mark.parametrize("k", [2, 4])
    def test_hotspot_on_64_pes(self, k):
        """Pairwise combining halves a simultaneous wave per stage, so
        the residual is N / 2^stages: 64/2^6 = 1 for k=2, but 64/2^3 = 8
        for k=4 — larger switches need the multi-combining extension
        (section 3.3 discusses exactly this trade-off) to reach one
        access."""
        machine = Ultracomputer(MachineConfig(n_pes=64, k=k))

        def program(pe_id):
            old = yield FetchAdd(0, 1)
            return old

        machine.spawn_many(64, program)
        stats = machine.run()
        results = [machine.programs.return_values[pe] for pe in range(64)]
        assert fetch_add_outcome_valid(0, [1] * 64, results, machine.peek(0))
        stages = machine.network.topology.stages
        assert stats.memory_accesses <= 64 // 2**stages

    def test_unlimited_combining_restores_single_access_at_k4(self):
        """The ablation the k=4 residual motivates: unlimited in-switch
        combining collapses the wave fully even with 4x4 switches."""
        machine = Ultracomputer(
            MachineConfig(n_pes=64, k=4, pairwise_only=False)
        )

        def program(pe_id):
            yield FetchAdd(0, 1)
            return True

        machine.spawn_many(64, program)
        stats = machine.run()
        assert machine.peek(0) == 64
        assert stats.memory_accesses == 1

    def test_deep_network_latency(self):
        """k=2 at 64 ports is 6 stages; unloaded round trip must stay
        logarithmic (about 2*6 + memory + packetization)."""
        machine = Ultracomputer(MachineConfig(n_pes=64, k=2))

        def program(pe_id):
            yield Load(0)

        machine.spawn(program)
        stats = machine.run()
        assert 12 <= stats.mean_round_trip <= 24

    def test_scatter_gather_all_pairs(self):
        """Every PE writes a unique cell then reads its neighbour's —
        64 x 2 references across every region of the machine."""
        machine = Ultracomputer(MachineConfig(n_pes=64, k=4))

        def program(pe_id, n):
            yield Store(1000 + pe_id, pe_id * 3)
            value = yield Load(1000 + (pe_id + 1) % n)
            return value

        machine.spawn_many(64, program, 64)
        machine.run()
        for pe in range(64):
            expected = ((pe + 1) % 64) * 3
            assert machine.programs.return_values[pe] == expected

    def test_mixed_storm(self):
        """All op kinds at once on a deep machine: counters, stores,
        loads, with combining on — final state fully determined for the
        commutative parts."""
        machine = Ultracomputer(MachineConfig(n_pes=64, k=2))

        def program(pe_id):
            yield FetchAdd(0, 1)
            yield Store(10 + pe_id, pe_id)
            value = yield Load(10 + pe_id)
            yield FetchAdd(1, value)
            return True

        machine.spawn_many(64, program)
        machine.run()
        assert machine.peek(0) == 64
        assert machine.peek(1) == sum(range(64))
