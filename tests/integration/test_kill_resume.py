"""Kill-and-resume: SIGKILL a sweep mid-flight, restart, bit parity.

The engine's resume story has two layers and both are exercised here:

* the **cache** layer — every completed point is written to the
  content-addressed cache before it is yielded, so a killed driver's
  finished points are served from disk on restart;
* the **shard directory** layer — a sharded sweep's workers coordinate
  through files, so a SIGKILLed driver leaves a harvestable batch
  directory (and possibly orphan workers still draining the queue)
  that the restarted driver re-adopts before enqueueing the remainder.

In both cases the resumed sweep's rendered JSON must be bit-identical
to an uninterrupted run with a fresh cache.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exp import ExperimentSpec, ResultCache, SweepAxis, SweepRunner

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Enough slow points that the driver is reliably mid-sweep when the
#: first cache entry appears (each point sleeps; 2 workers drain them
#: two at a time).
N_POINTS = 10
SLEEP_S = 0.3

DRIVER_SCRIPT = """\
import sys
from repro.exp import ExperimentSpec, ResultCache, SweepAxis, SweepRunner

cache_dir, backend = sys.argv[1], sys.argv[2]
spec = ExperimentSpec(
    experiment="debug.sleep",
    base={"seconds": %(sleep)r},
    axes=(SweepAxis("value", tuple(range(%(points)d))),),
    seed=11,
)
runner = SweepRunner(
    workers=2, cache=ResultCache(cache_dir), backend=backend, shards=2
)
runner.run(spec)
""" % {"sleep": SLEEP_S, "points": N_POINTS}


def sweep_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment="debug.sleep",
        base={"seconds": SLEEP_S},
        axes=(SweepAxis("value", tuple(range(N_POINTS))),),
        seed=11,
    )


def canonical(result) -> str:
    return json.dumps(result.to_dict()["results"], sort_keys=True)


def _spawn_driver(cache_dir: Path, backend: str, shard_root: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_EXP_SHARDS"] = str(shard_root)
    return subprocess.Popen(
        [sys.executable, "-c", DRIVER_SCRIPT, str(cache_dir), backend],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_cache_entry(cache_dir: Path, timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        entries = list(cache_dir.glob("??/*.json"))
        if entries:
            return len(entries)
        time.sleep(0.01)
    raise AssertionError("driver produced no cache entry before timeout")


@pytest.mark.parametrize("backend", ["pool", "sharded"])
def test_sigkill_mid_sweep_resumes_from_cache(tmp_path, backend):
    cache_dir = tmp_path / "cache"
    shard_root = tmp_path / "shards"

    driver = _spawn_driver(cache_dir, backend, shard_root)
    try:
        _wait_for_cache_entry(cache_dir)
        os.kill(driver.pid, signal.SIGKILL)
        driver.wait(timeout=30)
    finally:
        if driver.poll() is None:
            driver.kill()
            driver.wait(timeout=30)
    assert driver.returncode == -signal.SIGKILL

    # Restart over the same cache (and, for sharded, the same shard
    # root — the batch directory left behind must be re-adopted, not
    # trip up the new driver).
    resumed_runner = SweepRunner(
        workers=2,
        cache=ResultCache(cache_dir),
        backend=backend,
        shards=2,
    )
    if backend == "sharded":
        resumed_runner.backend._root = shard_root
    resumed = resumed_runner.run(sweep_spec())

    # The killed driver cached at least one completed point, and the
    # resumed sweep served those from disk instead of recomputing.
    assert resumed.cached_points >= 1
    assert resumed.cached_points + resumed.computed_points == N_POINTS
    assert [o.index for o in resumed.outcomes] == list(range(N_POINTS))

    # Bit parity with an uninterrupted run on a fresh cache.
    uninterrupted = SweepRunner(
        workers=1, cache=ResultCache(tmp_path / "fresh")
    ).run(sweep_spec())
    assert canonical(resumed) == canonical(uninterrupted)


def test_sharded_orphan_results_are_adopted(tmp_path):
    """Kill the driver but let its orphaned shard workers keep going:
    result blocks they finish after the driver's death must be adopted
    by the restarted driver (resumed_blocks > 0) rather than recomputed
    or — worse — collide with the new driver's block numbering."""
    cache_dir = tmp_path / "cache"
    shard_root = tmp_path / "shards"

    driver = _spawn_driver(cache_dir, "sharded", shard_root)
    try:
        _wait_for_cache_entry(cache_dir)
        os.kill(driver.pid, signal.SIGKILL)
        driver.wait(timeout=30)
        # The orphaned shard workers outlive the driver and keep
        # draining the queue (that is the designed behavior); wait for
        # them to finish so every point has a result file on disk but
        # only the pre-kill harvest made it into the cache.
        batch = shard_root / sweep_spec().spec_hash()[:24]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            queued = list((batch / "queue").glob("block-*.json"))
            leased = list((batch / "leases").glob("block-*.json"))
            if not queued and not leased and (
                    list((batch / "results").glob("block-*.json"))):
                break
            time.sleep(0.05)
    finally:
        if driver.poll() is None:
            driver.kill()
            driver.wait(timeout=30)

    had_orphan_results = bool(
        list(shard_root.glob("*/results/block-*.json")))

    runner = SweepRunner(
        workers=2, cache=ResultCache(cache_dir), backend="sharded", shards=2
    )
    runner.backend._root = shard_root
    resumed = runner.run(sweep_spec())
    assert len(resumed.outcomes) == N_POINTS
    if had_orphan_results:
        assert runner.backend.stats()["resumed_blocks"] >= 1

    uninterrupted = SweepRunner(
        workers=1, cache=ResultCache(tmp_path / "fresh")
    ).run(sweep_spec())
    assert canonical(resumed) == canonical(uninterrupted)
