"""Large-machine smoke for the batch kernel (the 1024-PE design point).

The differential grid in ``test_kernel_equivalence.py`` pins
bit-identity up to 64 PEs with full instrumentation; these tests extend
the check to the scale the batch kernel exists for.  The dense
comparison runs a short window (dense at 1024 PEs costs ~3 ms/cycle, so
a full run would dominate the suite); the batch-only test runs a
barrier-round workload to completion and checks the paper-level
outcome — near-total combining of synchronized fetch-and-adds.
"""

from __future__ import annotations

import random

from repro.core.machine import MachineConfig, Ultracomputer
from repro.core.memory_ops import FetchAdd

N_PES = 1024


def hotspot_program(pe_id, rounds=3, seed=0):
    rng = random.Random((seed << 16) | pe_id)
    total = 0
    for _ in range(rounds):
        yield rng.randrange(1, 30)
        total += yield FetchAdd(0, 1)
    return total


def barrier_rounds(pe_id, rounds=4, gap=300):
    total = 0
    for _ in range(rounds):
        yield gap
        total += yield FetchAdd(0, 1)
    return total


class TestThousandPEParity:
    def test_short_hotspot_window_identical(self):
        results = []
        for kernel in ("dense", "batch"):
            machine = Ultracomputer(MachineConfig(n_pes=N_PES, kernel=kernel))
            machine.spawn_many(N_PES, hotspot_program, 3, 17)
            results.append(machine.run_cycles(60).to_dict())
        assert results[0] == results[1]


class TestThousandPECompletion:
    def test_barrier_rounds_run_to_quiescence(self):
        machine = Ultracomputer(MachineConfig(n_pes=N_PES, kernel="batch"))
        machine.spawn_many(N_PES, barrier_rounds, 4, 300)
        result = machine.run()
        assert all(r.finished for r in result.per_pe.values())
        assert result.requests_issued == N_PES * 4
        # Synchronized rounds against one cell are the paper's ideal
        # combining case: nearly every request is absorbed in-network.
        assert result.combining_rate > 0.9
        # Fetch-and-add serializability: each round hands out distinct
        # tickets, so per-PE totals sum to sum(0..N*rounds-1).
        total = sum(r.return_value for r in result.per_pe.values())
        n = N_PES * 4
        assert total == n * (n - 1) // 2
