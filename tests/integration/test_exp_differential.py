"""Differential tests: the experiment engine vs the pre-engine paths.

The refactor's contract is that moving an artifact onto ``repro.exp``
changes *where* it runs (worker pools, cache) but not *what* it
computes: every payload must be bit-identical to the result of calling
the underlying code directly, whether the point was computed serially,
computed in a pool, or replayed from the on-disk cache.  Identity is
asserted on the canonical JSON encoding — the representation cached
entries actually live in.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.exp import (
    NullCache,
    ResultCache,
    SweepRunner,
    figure7_spec,
    hotspot_spec,
    serial_runner,
    table1_spec,
    tred2_spec,
)


def canonical(payload):
    """The engine's one output representation (sorted-key JSON text)."""
    return json.dumps(payload, sort_keys=True, default=repr)


# ----------------------------------------------------------------------
# pre-refactor reference implementations (direct, engine-free)
# ----------------------------------------------------------------------
def fig7_direct():
    from repro.analysis.configurations import (
        FIGURE7_DESIGNS,
        FIGURE7_P_GRID,
    )

    payloads = []
    for design in FIGURE7_DESIGNS:
        points = [
            {"p": p, "transit_time": design.transit_time(p, 4096)}
            for p in FIGURE7_P_GRID
            if p < design.capacity * 0.999
        ]
        payloads.append({
            "label": design.label(),
            "k": design.k,
            "d": design.d,
            "capacity": design.capacity,
            "cost_factor": design.cost_factor,
            "points": points,
        })
    return payloads


def hotspot_direct(pes=8, rounds=4):
    from repro.core.machine import MachineConfig, Ultracomputer
    from repro.core.memory_ops import FetchAdd

    results = []
    for combining in (True, False):
        machine = Ultracomputer(MachineConfig(
            n_pes=pes, combining=combining, instrument=True
        ))

        def program(pe_id):
            for _ in range(rounds):
                yield FetchAdd(0, 1)

        machine.spawn_many(pes, program)
        results.append(machine.run().to_dict())
    return results


def table1_direct():
    from repro.apps import poisson, tred2, weather
    from repro.apps.traces import replay
    from repro.network.stochastic import StochasticConfig, StochasticNetwork

    workloads = [
        ("weather-16", weather.build_traces(16, 8, 16)),
        ("weather-48", weather.build_traces(48, 4, 48)),
        ("tred2-16", tred2.build_traces(32, 16)),
        ("poisson-16", poisson.build_traces(32, 2, 16)),
    ]
    rows = []
    for name, traces in workloads:
        network = StochasticNetwork(StochasticConfig(seed=1))
        rows.append(dataclasses.asdict(replay(name, traces, network)))
    return rows


# ----------------------------------------------------------------------
# bit-parity: direct == serial engine == pooled engine == cache replay
# ----------------------------------------------------------------------
class TestBitParity:
    def test_fig7_engine_matches_direct(self, tmp_path):
        direct = canonical(fig7_direct())
        spec = figure7_spec(n=4096)

        serial = serial_runner().run(spec)
        assert canonical(serial.payloads) == direct

        cache = ResultCache(tmp_path / "cache")
        cold = SweepRunner(workers=1, cache=cache).run(spec)
        warm = SweepRunner(workers=1, cache=cache).run(spec)
        assert warm.cached_points == spec.n_points
        assert canonical(cold.payloads) == direct
        assert canonical(warm.payloads) == direct

    def test_hotspot_engine_matches_direct_machine_run(self, tmp_path):
        direct = canonical(hotspot_direct(pes=8, rounds=4))
        spec = hotspot_spec(pes=8, rounds=4)

        assert canonical(serial_runner().run(spec).payloads) == direct

        cache = ResultCache(tmp_path / "cache")
        SweepRunner(workers=1, cache=cache).run(spec)
        warm = SweepRunner(workers=1, cache=cache).run(spec)
        assert canonical(warm.payloads) == direct

    def test_table1_engine_matches_direct_replay(self):
        assert canonical(serial_runner().run(table1_spec(seed=1)).payloads) \
            == canonical(table1_direct())

    @pytest.mark.skipif(os.cpu_count() < 2, reason="needs >= 2 CPUs")
    def test_pooled_hotspot_matches_direct(self):
        spec = hotspot_spec(pes=8, rounds=4)
        pooled = SweepRunner(workers=2, cache=NullCache()).run(spec)
        assert canonical(pooled.payloads) == canonical(
            hotspot_direct(pes=8, rounds=4)
        )


# ----------------------------------------------------------------------
# performance: warm cache and parallel speedup
# ----------------------------------------------------------------------
class TestPerformance:
    def test_fig7_warm_rerun_under_one_second(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = figure7_spec(n=4096)
        SweepRunner(workers=1, cache=cache).run(spec)

        started = time.perf_counter()
        warm = SweepRunner(workers=1, cache=cache).run(spec)
        elapsed = time.perf_counter() - started
        assert warm.cached_points == spec.n_points
        assert elapsed < 1.0

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup needs >= 4 CPUs (fig7's analytic points "
        "are microseconds each, so the speedup subject is a tred2 "
        "simulation sweep; see EXPERIMENTS.md for measured numbers)",
    )
    def test_four_workers_at_least_2_5x_faster_than_serial(self):
        # Simulation-bound sweep: four independent TRED2 points, each a
        # few hundred milliseconds of cycle-accurate Python.
        pairs = [(4, 24), (4, 26), (4, 28), (8, 24)]
        spec = tred2_spec(pairs, seed=11)

        started = time.perf_counter()
        serial = SweepRunner(workers=1, cache=NullCache()).run(spec)
        serial_time = time.perf_counter() - started

        started = time.perf_counter()
        pooled = SweepRunner(workers=4, cache=NullCache()).run(spec)
        pooled_time = time.perf_counter() - started

        assert pooled.payloads == serial.payloads
        assert serial_time / pooled_time >= 2.5
