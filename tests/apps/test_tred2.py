"""Tests for TRED2 — serial, parallel, and the measurement loop."""

import numpy as np
import pytest

from repro.apps.tred2 import (
    Tred2Layout,
    build_traces,
    collect_samples,
    extract_tridiagonal,
    measure,
    random_symmetric,
    tred2,
    tridiagonal_matrix,
)


def eigen_error(matrix, d, e):
    original = np.sort(np.linalg.eigvalsh(matrix))
    reduced = np.sort(np.linalg.eigvalsh(tridiagonal_matrix(d, e)))
    return float(np.max(np.abs(original - reduced)))


class TestSerialReference:
    @pytest.mark.parametrize("n", [3, 5, 8, 16])
    def test_similarity_preserved(self, n):
        matrix = random_symmetric(n, seed=n)
        d, e = tred2(matrix)
        assert eigen_error(matrix, d, e) < 1e-8

    def test_already_tridiagonal_is_fixed_point(self):
        matrix = np.diag([1.0, 2.0, 3.0, 4.0])
        for i in range(3):
            matrix[i, i + 1] = matrix[i + 1, i] = 0.5
        d, e = tred2(matrix)
        assert np.allclose(d, np.diag(matrix))
        assert np.allclose(np.abs(e[1:]), 0.5)

    def test_diagonal_matrix_untouched(self):
        matrix = np.diag([3.0, 1.0, 4.0, 1.0, 5.0])
        d, e = tred2(matrix)
        assert np.allclose(d, [3, 1, 4, 1, 5])
        assert np.allclose(e, 0)

    def test_rejects_nonsymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            tred2(np.arange(9.0).reshape(3, 3))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            tred2(np.zeros((2, 3)))


class TestParallelVariant:
    @pytest.mark.parametrize("processors", [1, 2, 4])
    def test_parallel_result_matches_serial(self, processors):
        n = 8
        sample, para, layout = measure(processors, n, seed=17)
        d_parallel, e_parallel = extract_tridiagonal(para, layout)
        matrix = random_symmetric(n, seed=17)
        assert eigen_error(matrix, d_parallel, e_parallel) < 1e-8

    def test_more_processors_run_faster(self):
        t1 = measure(1, 12, seed=4)[0].total_time
        t4 = measure(4, 12, seed=4)[0].total_time
        assert t4 < t1
        # the divided N^3 term should give real speedup, not epsilon
        assert t1 / t4 > 1.5

    def test_waiting_time_grows_with_processors(self):
        w2 = measure(2, 12, seed=4)[0].waiting_time
        w8 = measure(8, 12, seed=4)[0].waiting_time
        assert w8 > w2

    def test_single_pe_has_no_waiting(self):
        sample = measure(1, 10, seed=1)[0]
        assert sample.waiting_time == 0.0

    def test_collect_samples(self):
        samples = collect_samples([(1, 8), (2, 8)], seed=5)
        assert [s.processors for s in samples] == [1, 2]
        assert all(s.total_time > 0 for s in samples)


class TestLayout:
    def test_addresses_disjoint(self):
        layout = Tred2Layout(n=6, base=100)
        cells = set()
        for i in range(6):
            for j in range(6):
                cells.add(layout.a(i, j))
        for i in range(6):
            cells.add(layout.v + i)
            cells.add(layout.q + i)
            cells.add(layout.p(i))
        for scalar in (layout.sigma, layout.beta, layout.alpha,
                       layout.vdotp, layout.barrier_count,
                       layout.barrier_sense):
            cells.add(scalar)
        for phase in range(5):
            cells.add(layout.dispenser(phase))
        assert len(cells) == 6 * 6 + 3 * 6 + 11
        assert max(cells) < 100 + layout.footprint


class TestTraces:
    def test_reference_mix_in_paper_range(self):
        traces = build_traces(32, 16)
        instructions = sum(t.instructions for t in traces)
        data_refs = sum(t.data_refs for t in traces)
        shared = sum(t.shared_refs for t in traces)
        assert 0.15 < data_refs / instructions < 0.35
        assert 0.03 < shared / instructions < 0.12

    def test_work_split_across_pes(self):
        traces = build_traces(24, 8)
        counts = [t.instructions for t in traces]
        assert max(counts) < 2 * min(counts)  # roughly balanced
