"""Tests for the synthetic traffic generators (section 4 workload model)."""

import pytest

from repro.core.machine import MachineConfig, Ultracomputer
from repro.workloads.synthetic import (
    SyntheticTrafficDriver,
    TrafficSpec,
    run_uniform_traffic,
)


def build(spec, n_pes=16, **config):
    machine = Ultracomputer(MachineConfig(n_pes=n_pes, **config))
    driver = SyntheticTrafficDriver(machine, spec)
    machine.attach_driver(driver)
    return machine, driver


class TestOfferedLoad:
    def test_offered_rate_matches_spec(self):
        machine, driver = build(TrafficSpec(rate=0.25, seed=1))
        machine.run_cycles(800)
        offered_rate = driver.offered / (800 * 16)
        assert offered_rate == pytest.approx(0.25, rel=0.15)

    def test_zero_rate_offers_nothing(self):
        machine, driver = build(TrafficSpec(rate=0.0, seed=1))
        machine.run_cycles(100)
        assert driver.offered == 0

    def test_requests_per_pe_limit(self):
        machine, driver = build(
            TrafficSpec(rate=0.9, requests_per_pe=5, seed=2)
        )
        for _ in range(500):
            machine.step()
            if driver.done():
                break
        assert driver.done()
        stats = driver.stats()
        assert stats.issued == 16 * 5

    def test_deterministic_for_seed(self):
        results = []
        for _ in range(2):
            machine, driver = build(TrafficSpec(rate=0.2, seed=33))
            machine.run_cycles(300)
            results.append(driver.stats().issued)
        assert results[0] == results[1]


class TestPatterns:
    def test_uniform_spreads_over_modules(self):
        machine, driver = build(TrafficSpec(rate=0.3, seed=3))
        machine.run_cycles(600)
        assert machine.memory.imbalance() < 2.5

    def test_hotspot_generates_fetch_adds(self):
        machine, driver = build(
            TrafficSpec(rate=0.3, pattern="hotspot", hot_fraction=1.0,
                        hot_address=0, seed=4)
        )
        machine.run_cycles(400)
        # all traffic was F&A(0, 1): the hot cell counts completions
        assert machine.peek(0) > 0
        stats = machine.stats()
        assert stats.combines > 0  # hot spot combines in flight

    def test_hotspot_fraction_mixes(self):
        machine, driver = build(
            TrafficSpec(rate=0.3, pattern="hotspot", hot_fraction=0.3,
                        hot_address=0, seed=5)
        )
        machine.run_cycles(500)
        hot = machine.peek(0)
        total = machine.stats().replies_received
        assert 0 < hot < total  # both kinds of traffic flowed

    def test_permutation_is_conflict_light(self):
        machine, driver = build(TrafficSpec(rate=0.3, pattern="permutation", seed=6))
        machine.run_cycles(500)
        stats = driver.stats()
        # permutation traffic sees little queueing: latency near minimum
        assert stats.mean_latency < 18

    def test_stride_concentrates_without_hashing(self):
        machine, driver = build(
            TrafficSpec(rate=0.2, pattern="stride", stride=16, seed=7),
            words_per_module=64,
        )
        machine.run_cycles(400)
        assert machine.memory.imbalance() > 8.0


class TestHarness:
    def test_run_uniform_traffic_drains(self):
        stats, machine = run_uniform_traffic(8, rate=0.2, cycles=300, seed=8)
        assert stats.completed == stats.issued
        assert all(p.outstanding() == 0 for p in machine.pnis)

    def test_stats_latency_population(self):
        stats, _ = run_uniform_traffic(8, rate=0.2, cycles=300, seed=9)
        assert len(stats.latencies) == stats.completed
        assert stats.max_latency >= stats.mean_latency
        assert stats.completion_ratio == 1.0
