"""Tests for the Monte Carlo particle-tracking workload."""

import math
import random

import pytest

from repro.apps.montecarlo import (
    SlabProblem,
    TransportResult,
    parallel_tracker,
    pure_absorber_transmission,
    simulate,
    simulate_parallel,
    track_particle,
)


class TestSerial:
    def test_pure_absorber_matches_closed_form(self):
        problem = SlabProblem(
            thickness=2.0, sigma_total=1.0, scatter_probability=0.0
        )
        result = simulate(problem, 40_000, seed=7)
        assert result.transmission == pytest.approx(
            pure_absorber_transmission(problem), abs=0.01
        )

    def test_no_reflection_without_scattering(self):
        problem = SlabProblem(
            thickness=1.0, sigma_total=1.0, scatter_probability=0.0
        )
        result = simulate(problem, 5_000, seed=3)
        assert result.reflected == 0

    def test_scattering_produces_reflection(self):
        problem = SlabProblem(
            thickness=1.0, sigma_total=1.0, scatter_probability=0.8
        )
        result = simulate(problem, 5_000, seed=3)
        assert result.reflected > 0

    def test_tally_conservation(self):
        problem = SlabProblem()
        result = simulate(problem, 1_234, seed=1)
        assert result.histories == 1_234

    def test_thicker_slab_transmits_less(self):
        thin = simulate(SlabProblem(thickness=1.0), 20_000, seed=5)
        thick = simulate(SlabProblem(thickness=4.0), 20_000, seed=5)
        assert thick.transmission < thin.transmission

    def test_track_particle_fates(self):
        rng = random.Random(0)
        problem = SlabProblem()
        fates = {track_particle(problem, rng)[0] for _ in range(500)}
        assert fates <= {"transmitted", "reflected", "absorbed"}
        assert "absorbed" in fates

    def test_validation(self):
        with pytest.raises(ValueError):
            SlabProblem(thickness=-1).validate()
        with pytest.raises(ValueError):
            SlabProblem(scatter_probability=1.0).validate()


class TestParallel:
    def test_exact_history_conservation(self):
        """Fetch-and-add dispensing: every particle tracked exactly once
        regardless of PE count."""
        problem = SlabProblem()
        for processors in (1, 4, 16):
            result, _ = simulate_parallel(problem, 300, processors, seed=2)
            assert result.histories == 300

    def test_agrees_with_serial_statistics(self):
        problem = SlabProblem(
            thickness=2.0, sigma_total=1.0, scatter_probability=0.0
        )
        parallel_result, _ = simulate_parallel(problem, 8_000, 16, seed=9)
        expected = pure_absorber_transmission(problem)
        assert parallel_result.transmission == pytest.approx(expected, abs=0.02)

    def test_speedup_with_more_processors(self):
        problem = SlabProblem()
        _, cycles_2 = simulate_parallel(problem, 400, 2, seed=4)
        _, cycles_16 = simulate_parallel(problem, 400, 16, seed=4)
        assert cycles_16 < cycles_2
        assert cycles_2 / cycles_16 > 3  # near-linear MIMD scaling

    def test_workers_report_tracked_counts(self):
        from repro.apps.montecarlo import TallyLayout
        from repro.core.paracomputer import Paracomputer

        para = Paracomputer(seed=1)
        layout = TallyLayout(base=0)
        para.spawn_many(4, parallel_tracker, layout, SlabProblem(), 100)
        stats = para.run(100_000)
        assert sum((r.return_value for r in stats.per_pe.values())) == 100
