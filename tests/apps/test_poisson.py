"""Tests for the multigrid Poisson solver."""

import numpy as np
import pytest

from repro.apps.poisson import (
    build_traces,
    jacobi,
    manufactured_problem,
    prolong,
    residual,
    restrict,
    solve,
    v_cycle,
)


class TestComponents:
    def test_residual_of_exact_discrete_solution_small(self):
        f, exact = manufactured_problem(16)
        r = residual(exact, f, h=1 / 16)
        # truncation error only: O(h^2) * ||f|| scale
        assert float(np.max(np.abs(r))) < 1.0

    def test_jacobi_reduces_residual(self):
        f, _ = manufactured_problem(16)
        u0 = np.zeros_like(f)
        u1 = jacobi(u0, f, 1 / 16, sweeps=10)
        r0 = np.linalg.norm(residual(u0, f, 1 / 16))
        r1 = np.linalg.norm(residual(u1, f, 1 / 16))
        assert r1 < r0

    def test_restrict_prolong_shapes(self):
        fine = np.random.default_rng(0).standard_normal((17, 17))
        coarse = restrict(fine)
        assert coarse.shape == (9, 9)
        back = prolong(coarse, 16)
        assert back.shape == (17, 17)

    def test_prolong_interpolates_coarse_points_exactly(self):
        coarse = np.arange(25.0).reshape(5, 5)
        fine = prolong(coarse, 8)
        assert np.allclose(fine[::2, ::2], coarse)

    def test_restriction_preserves_smooth_fields(self):
        xs = np.linspace(0, 1, 17)
        smooth = np.sin(np.pi * xs)[:, None] * np.sin(np.pi * xs)[None, :]
        coarse = restrict(smooth)
        xc = np.linspace(0, 1, 9)
        expected = np.sin(np.pi * xc)[:, None] * np.sin(np.pi * xc)[None, :]
        assert np.allclose(coarse[1:-1, 1:-1], expected[1:-1, 1:-1], atol=0.05)


class TestVCycle:
    def test_contraction_factor(self):
        f, _ = manufactured_problem(32)
        _u, norms = solve(f, cycles=6)
        factors = [b / a for a, b in zip(norms, norms[1:])]
        assert max(factors) < 0.35  # textbook multigrid contraction

    def test_converges_to_manufactured_solution(self):
        f, exact = manufactured_problem(32)
        u, _ = solve(f, cycles=12)
        assert float(np.max(np.abs(u - exact))) < 5e-3

    def test_second_order_accuracy(self):
        """Doubling the grid roughly quarters the discretization error."""
        errors = {}
        for n in (16, 32):
            f, exact = manufactured_problem(n)
            u, _ = solve(f, cycles=15)
            errors[n] = float(np.max(np.abs(u - exact)))
        assert errors[32] < errors[16] / 2.5

    def test_boundary_stays_zero(self):
        f, _ = manufactured_problem(16)
        u = v_cycle(np.zeros_like(f), f, 1 / 16)
        assert np.allclose(u[0, :], 0) and np.allclose(u[-1, :], 0)
        assert np.allclose(u[:, 0], 0) and np.allclose(u[:, -1], 0)

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            solve(np.zeros((10, 10)))


class TestTraces:
    def test_reference_mix_in_paper_band(self):
        traces = build_traces(32, 2, 16)
        instructions = sum(t.instructions for t in traces)
        refs = sum(t.data_refs for t in traces)
        shared = sum(t.shared_refs for t in traces)
        assert 0.12 < refs / instructions < 0.35
        assert 0.02 < shared / instructions < 0.12

    def test_coarse_levels_raise_shared_fraction(self):
        """With many PEs, coarse grids (strip = 1 row) make both
        vertical neighbours foreign, so the shared fraction rises versus
        a few-PE run."""
        many = build_traces(32, 1, 16)
        few = build_traces(32, 1, 2)
        share_many = sum(t.shared_refs for t in many) / sum(
            t.instructions for t in many
        )
        share_few = sum(t.shared_refs for t in few) / sum(
            t.instructions for t in few
        )
        assert share_many > share_few
