"""Tests for the WASHCLOTH-style scaling harness."""

import pytest

from repro.apps.harness import ScalingStudy, run_point, run_study
from repro.core.memory_ops import FetchAdd


def counting_workload(processors, size):
    """A perfectly divisible workload: size items, F&A self-scheduled."""

    def setup(machine):
        machine.poke(0, 0)

    def program(pe_id, total_items):
        while True:
            item = yield FetchAdd(0, 1)
            if item >= total_items:
                return True
            yield 4  # per-item work

    return setup, program, (size,)


class TestRunPoint:
    def test_measures_cycles_and_ops(self):
        point = run_point(counting_workload, 2, 32, seed=1)
        assert point.processors == 2
        assert point.cycles > 0
        assert point.ops_issued >= 32

    def test_more_processors_fewer_cycles(self):
        serial = run_point(counting_workload, 1, 64, seed=1)
        parallel = run_point(counting_workload, 8, 64, seed=1)
        assert parallel.cycles < serial.cycles
        assert parallel.speedup_vs(serial) > 4.0
        assert 0.5 < parallel.efficiency_vs(serial) <= 1.05


class TestRunStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(
            counting_workload,
            name="counting",
            processor_counts=[1, 2, 4, 8],
            sizes=[32, 128],
            seed=2,
        )

    def test_grid_complete(self, study):
        assert len(study.points) == 8

    def test_efficiency_decreases_with_processors(self, study):
        for size in (32, 128):
            values = [study.efficiency(p, size) for p in (2, 4, 8)]
            assert values == sorted(values, reverse=True)

    def test_bigger_problems_scale_better(self, study):
        assert study.efficiency(8, 128) > study.efficiency(8, 32)

    def test_table_renders(self, study):
        text = study.table()
        assert "counting" in text
        assert "%" in text
        assert "128" in text

    def test_missing_serial_raises(self):
        study = ScalingStudy(workload_name="x")
        with pytest.raises(KeyError, match="serial"):
            study.serial(10)
