"""Tests for the trace format and Table 1 replayer."""

import pytest

from repro.apps.traces import Compute, PETrace, SharedRef, Table1Row, replay
from repro.network.stochastic import StochasticConfig, StochasticNetwork


def small_network(**kwargs):
    defaults = dict(n_ports=64, k=4, service_jitter=0.0, seed=0)
    defaults.update(kwargs)
    return StochasticNetwork(StochasticConfig(**defaults))


class TestPETrace:
    def test_builders_and_counts(self):
        trace = (
            PETrace(pe_id=0)
            .compute(10)
            .private(3)
            .shared_load(5, prefetch=2)
            .shared_store(6)
        )
        assert trace.instructions == 10 + 3 + 2
        assert trace.data_refs == 5
        assert trace.shared_refs == 2
        assert trace.shared_loads == 1

    def test_zero_compute_ignored(self):
        trace = PETrace(pe_id=0).compute(0)
        assert trace.events == []


class TestReplay:
    def test_compute_only_trace_never_idles(self):
        traces = [PETrace(pe_id=0).compute(100)]
        row = replay("compute", traces, small_network())
        assert row.idle_fraction == 0.0
        assert row.avg_cm_access_time == 0.0
        assert row.instructions == 100

    def test_immediate_use_idles_full_round_trip(self):
        """prefetch=0: idle per load = access time minus the reference
        instruction itself."""
        network = small_network()
        traces = [
            PETrace(pe_id=0).shared_load(1, prefetch=0).compute(5)
        ]
        row = replay("blocking", traces, network)
        minimum_instr = network.minimum_round_trip() / 2
        assert row.avg_cm_access_time == pytest.approx(minimum_instr)
        assert row.idle_per_cm_load == pytest.approx(minimum_instr - 1, abs=0.5)

    def test_prefetch_hides_latency(self):
        def one_trace(prefetch):
            trace = PETrace(pe_id=0)
            for i in range(20):
                trace.shared_load(i * 7 + 1, prefetch=prefetch)
                trace.compute(12)
            return [trace]

        eager = replay("eager", one_trace(10), small_network())
        blocking = replay("blocking", one_trace(0), small_network())
        assert eager.idle_per_cm_load < blocking.idle_per_cm_load
        assert eager.idle_fraction < blocking.idle_fraction

    def test_stores_never_stall(self):
        trace = PETrace(pe_id=0)
        for i in range(10):
            trace.shared_store(i)
            trace.compute(2)
        row = replay("stores", [trace], small_network())
        assert row.idle_fraction == 0.0

    def test_contention_raises_access_time(self):
        def hot_traces(n_pes, spread):
            out = []
            for pe in range(n_pes):
                trace = PETrace(pe_id=pe)
                for i in range(10):
                    address = (pe * 31 + i * 17) % 64 if spread else 5
                    trace.shared_load(address, prefetch=0)
                    trace.compute(2)
                out.append(trace)
            return out

        quiet = replay("spread", hot_traces(16, True), small_network())
        contended = replay("hot", hot_traces(16, False), small_network())
        assert contended.avg_cm_access_time > quiet.avg_cm_access_time

    def test_row_formatting(self):
        row = Table1Row(
            program="x",
            pes=16,
            avg_cm_access_time=8.9,
            idle_fraction=0.37,
            idle_per_cm_load=5.3,
            mem_refs_per_instr=0.21,
            shared_refs_per_instr=0.08,
        )
        text = row.formatted()
        assert "8.90" in text and "37.0%" in text
        assert len(Table1Row.header()) > 0

    def test_multi_pe_interleaving_deterministic(self):
        traces = [
            PETrace(pe_id=pe).shared_load(pe, prefetch=1).compute(3)
            for pe in range(8)
        ]
        a = replay("a", traces, small_network(seed=5))
        traces2 = [
            PETrace(pe_id=pe).shared_load(pe, prefetch=1).compute(3)
            for pe in range(8)
        ]
        b = replay("b", traces2, small_network(seed=5))
        assert a.avg_cm_access_time == b.avg_cm_access_time
        assert a.idle_fraction == b.idle_fraction
