"""Tests for the weather PDE workload."""

import math

import numpy as np
import pytest

from repro.apps.weather import (
    build_traces,
    exact_mode_decay,
    solve,
    stable_dt,
    step_field,
)


class TestSolver:
    def test_pure_diffusion_matches_analytic_decay(self):
        n, steps = 32, 60
        u = solve(n, steps, c=0.0, alpha=0.05)
        amplitude = float(np.max(np.abs(u)))
        expected = exact_mode_decay(n, steps, c=0.0, alpha=0.05)
        assert amplitude == pytest.approx(expected, rel=0.05)

    def test_advection_preserves_amplitude_shape(self):
        """With diffusion, the traveling wave decays but stays smooth
        and bounded."""
        u = solve(32, 40, c=0.2, alpha=0.02)
        assert np.all(np.isfinite(u))
        assert float(np.max(np.abs(u))) <= 1.0

    def test_conservation_of_mean(self):
        """Periodic FTCS conserves the grid mean exactly."""
        rng = np.random.default_rng(1)
        initial = rng.standard_normal((16, 16))
        u = solve(16, 25, c=0.1, alpha=0.05, initial=initial)
        assert float(u.mean()) == pytest.approx(float(initial.mean()), abs=1e-12)

    def test_stability_bound_positive(self):
        assert stable_dt(0.1, 0.05, 1 / 32) > 0
        # pure advection and pure diffusion each have a finite bound
        assert not math.isinf(stable_dt(0.0, 0.05, 1 / 32))
        assert not math.isinf(stable_dt(0.1, 0.0, 1 / 32))

    def test_step_field_linearity(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        kwargs = dict(c=0.1, alpha=0.05, dt=1e-4, dx=1 / 8)
        lhs = step_field(a + b, **kwargs)
        rhs = step_field(a, **kwargs) + step_field(b, **kwargs)
        assert np.allclose(lhs, rhs)


class TestTraces:
    def test_reference_mix_matches_paper_band(self):
        """Roughly one data reference per five instructions (Table 1
        discussion: 0.21 refs/instr for the weather code)."""
        traces = build_traces(16, 4, 16)
        instructions = sum(t.instructions for t in traces)
        refs = sum(t.data_refs for t in traces)
        assert 0.15 < refs / instructions < 0.30

    def test_single_row_strips_share_both_neighbours(self):
        one_row = build_traces(16, 2, 16)  # 1 row per PE
        thick = build_traces(16, 2, 4)  # 4 rows per PE
        share_thin = sum(t.shared_refs for t in one_row) / sum(
            t.instructions for t in one_row
        )
        share_thick = sum(t.shared_refs for t in thick) / sum(
            t.instructions for t in thick
        )
        assert share_thin > share_thick

    def test_indivisible_partition_rejected(self):
        with pytest.raises(ValueError):
            build_traces(10, 1, 3)

    def test_trace_count_matches_pes(self):
        traces = build_traces(16, 1, 8)
        assert len(traces) == 8
        assert [t.pe_id for t in traces] == list(range(8))
