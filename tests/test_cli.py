"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("demo", "fig7", "table1", "packaging", "hotspot",
                        "stats", "trace", "timeline", "drift"):
            args = parser.parse_args([command])
            assert args.command == command


class TestCommands:
    def test_demo_prints_combining_story(self, capsys):
        assert main(["demo", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "final counter:     32" in out
        assert "memory accesses:" in out

    def test_fig7_prints_curves(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "k=4 d=2" in out
        assert "sat" in out  # saturated entries rendered

    def test_packaging_prints_paper_numbers(self, capsys):
        assert main(["packaging"]) == 0
        out = capsys.readouterr().out
        assert "65536" in out
        assert "352" in out and "672" in out

    def test_hotspot_shows_both_columns(self, capsys):
        assert main(["hotspot", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "combining" in out and "serialized" in out
        assert "combines by switch stage" in out
        assert "round-trip histogram" in out

    def test_table1_prints_four_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("weather-16", "weather-48", "tred2-16", "poisson-16"):
            assert name in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "N\\PE" in out

    def test_fig7_plot(self, capsys):
        assert main(["fig7", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "T (cycles)" in out
        assert "k=4 d=2" in out

    def test_fig7_cross_topology_table_and_chart(self, capsys):
        assert main(["fig7", "--topology", "omega", "--topology", "mesh",
                     "--rate", "0.05", "--cycles", "120", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7 across fabrics" in out
        assert "fabric" in out and "mesh" in out and "omega" in out
        # the latency-vs-load chart with one legend entry per fabric
        assert "mean round trip (cycles)" in out

    def test_fig7_cross_topology_json(self, capsys):
        assert main(["fig7", "--topology", "hypercube", "--rate", "0.05",
                     "--cycles", "120", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (point,) = payload["results"]
        assert point["topology"] == "hypercube"
        assert point["issued"] == point["completed"] > 0
        assert point["predicted_round_trip"] > 0

    def test_fig7_invalid_topology_size_is_actionable(self, capsys):
        with pytest.raises(ValueError, match="nearest valid sizes"):
            main(["fig7", "--topology", "mesh", "--pes", "8",
                  "--rate", "0.05", "--no-cache"])

    def test_drift_topology_flag(self, capsys):
        assert main(["drift", "--topology", "hypercube", "--cycles", "400",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "hypercube fabric" in out

    def test_queue_race(self, capsys, monkeypatch):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parents[1])
        assert main(["queue"]) == 0
        out = capsys.readouterr().out
        assert "lock-free" in out and "locked" in out

    def test_stats_prints_metrics_table(self, capsys):
        assert main(["stats", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "network.combines{stage=0}" in out
        assert "machine.round_trip_cycles" in out

    def test_trace_prints_events(self, capsys):
        assert main(["trace", "--pes", "4", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "issue" in out
        assert out.count("\n") <= 7  # header + 5 events + trailing

    def test_trace_warns_on_truncation(self, capsys):
        assert main(["trace", "--pes", "8", "--rounds", "4",
                     "--capacity", "16", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "WARNING: trace truncated" in out
        assert "--capacity" in out

    def test_trace_chrome_export(self, capsys, tmp_path):
        path = tmp_path / "perfetto.json"
        assert main(["trace", "--pes", "4", "--chrome", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_stats_trace_capacity_reports_latency(self, capsys):
        assert main(["stats", "--pes", "8", "--trace-capacity", "4096"]) == 0
        out = capsys.readouterr().out
        assert "transit latency:" in out
        assert "p50=" in out and "max=" in out

    def test_stats_warns_on_truncated_trace(self, capsys):
        assert main(["stats", "--pes", "8", "--trace-capacity", "16"]) == 0
        out = capsys.readouterr().out
        assert "WARNING: trace truncated" in out

    def test_timeline_prints_table_and_plots(self, capsys):
        assert main(["timeline", "--pes", "8", "--cycles", "300",
                     "--window", "100"]) == 0
        out = capsys.readouterr().out
        assert "fwd pkts" in out and "mm util" in out
        assert "-- forward_packets --" in out
        assert "x: cycle" in out

    def test_drift_prints_stage_table(self, capsys):
        assert main(["drift", "--cycles", "500"]) == 0
        out = capsys.readouterr().out
        assert "analytic drift monitor" in out
        assert "rel error" in out
        assert "round trip:" in out
        assert "ok — every error within" in out

    def test_drift_strict_fails_on_tiny_threshold(self, capsys):
        assert main(["drift", "--cycles", "300", "--strict",
                     "--threshold", "0.000001"]) == 1
        out = capsys.readouterr().out
        assert "WARNING:" in out

    def test_drift_non_strict_warns_but_succeeds(self, capsys):
        assert main(["drift", "--cycles", "300",
                     "--threshold", "0.000001"]) == 0
        assert "WARNING:" in capsys.readouterr().out


class TestJsonOutput:
    """Every --json path emits the same envelope: schema_version,
    command, optional spec/sweep echoes, and the payload in results."""

    @staticmethod
    def _envelope(capsys, command):
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["command"] == command
        return payload

    def test_demo_json(self, capsys):
        assert main(["demo", "--pes", "8", "--json"]) == 0
        payload = self._envelope(capsys, "demo")
        assert payload["results"]["final_counter"] == 32
        assert payload["results"]["requests_issued"] == 32

    def test_fig7_json(self, capsys):
        assert main(["fig7", "--json"]) == 0
        payload = self._envelope(capsys, "fig7")
        assert payload["spec"]["experiment"] == "fig7.design_curve"
        assert payload["sweep"]["cached_points"] == 0
        assert len(payload["results"]) == 6
        assert all("points" in s for s in payload["results"])

    def test_fig7_json_second_run_is_cached(self, capsys):
        assert main(["fig7", "--json"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--json"]) == 0
        payload = self._envelope(capsys, "fig7")
        assert payload["sweep"]["cached_points"] == 6
        assert payload["sweep"]["computed_points"] == 0

    def test_table1_json(self, capsys):
        assert main(["table1", "--json"]) == 0
        payload = self._envelope(capsys, "table1")
        programs = {row["program"] for row in payload["results"]}
        assert programs == {
            "weather-16", "weather-48", "tred2-16", "poisson-16",
        }

    def test_hotspot_json(self, capsys):
        assert main(["hotspot", "--pes", "8", "--json"]) == 0
        payload = self._envelope(capsys, "hotspot")
        on = payload["results"]["combining"]
        off = payload["results"]["serialized"]
        assert on["memory_accesses"] < off["memory_accesses"]

    def test_queue_json(self, capsys):
        assert main(["queue", "--json"]) == 0
        payload = self._envelope(capsys, "queue")
        assert [row["pes"] for row in payload["results"]] == [2, 4, 8, 16]

    def test_packaging_json(self, capsys):
        assert main(["packaging", "--json"]) == 0
        payload = self._envelope(capsys, "packaging")
        assert payload["pes"] == 4096
        assert any(row["value"] == 4096 for row in payload["results"])

    def test_stats_json_carries_metrics(self, capsys):
        assert main(["stats", "--pes", "8", "--json"]) == 0
        payload = self._envelope(capsys, "stats")["results"]
        names = {sample["name"] for sample in payload["metrics"]}
        assert "network.combines" in names
        assert "machine.round_trip_cycles" in names
        stage_counts = [
            sample["value"] for sample in payload["metrics"]
            if sample["name"] == "network.combines"
        ]
        assert sum(stage_counts) == payload["combines"]

    def test_trace_json(self, capsys):
        assert main(["trace", "--pes", "4", "--limit", "3", "--json"]) == 0
        envelope = self._envelope(capsys, "trace")
        payload = envelope["results"]
        assert len(payload) == 3
        assert all(event["kind"] == "issue" for event in payload)
        assert envelope["dropped"] == 0
        assert envelope["total_events"] > 3

    def test_trace_json_surfaces_dropped_count(self, capsys):
        assert main(["trace", "--pes", "8", "--rounds", "4",
                     "--capacity", "16", "--json"]) == 0
        envelope = self._envelope(capsys, "trace")
        assert envelope["dropped"] > 0

    def test_trace_json_combine_events_carry_tag2(self, capsys):
        assert main(["trace", "--pes", "4", "--json"]) == 0
        payload = self._envelope(capsys, "trace")["results"]
        combines = [e for e in payload if e["kind"] == "combine"]
        assert combines
        assert all("tag2" in e for e in combines)

    def test_trace_json_chrome_path_echoed(self, capsys, tmp_path):
        path = tmp_path / "perfetto.json"
        assert main(["trace", "--pes", "4", "--chrome", str(path),
                     "--json"]) == 0
        envelope = self._envelope(capsys, "trace")
        assert envelope["chrome_trace"] == str(path)
        assert path.exists()

    def test_stats_json_carries_latency_and_dropped(self, capsys):
        assert main(["stats", "--pes", "8", "--trace-capacity", "4096",
                     "--json"]) == 0
        payload = self._envelope(capsys, "stats")["results"]
        assert payload["trace_dropped"] == 0
        assert payload["latency"]["count"] == payload["requests_issued"]
        assert payload["latency"]["max"] >= payload["latency"]["p50"]

    def test_timeline_json(self, capsys):
        assert main(["timeline", "--pes", "8", "--cycles", "300",
                     "--window", "100", "--json"]) == 0
        envelope = self._envelope(capsys, "timeline")
        assert envelope["spec"]["experiment"] == "obs.timeline"
        samples = envelope["results"]["samples"]
        assert [s["cycle"] for s in samples] == [100, 200, 300]

    def test_drift_json(self, capsys):
        assert main(["drift", "--cycles", "500", "--json"]) == 0
        envelope = self._envelope(capsys, "drift")
        assert envelope["spec"]["experiment"] == "obs.drift"
        report = envelope["results"]
        assert report["ok"] is True
        assert report["stages"]
        assert report["round_trip"]["rel_error"] < report["threshold"]


class TestSweepFlags:
    def test_no_cache_never_caches(self, capsys):
        assert main(["fig7", "--json", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["cached_points"] == 0

    def test_refresh_recomputes(self, capsys):
        assert main(["fig7", "--json"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--json", "--refresh"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["cached_points"] == 0
        assert payload["sweep"]["computed_points"] == 6

    def test_cache_dir_flag(self, capsys, tmp_path):
        cache_dir = tmp_path / "elsewhere"
        assert main(["fig7", "--json", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert any(cache_dir.rglob("*.json"))
        assert main(["fig7", "--json", "--cache-dir", str(cache_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["cached_points"] == 6


class TestSeedFlag:
    def test_seed_zero_is_lockstep_default(self, capsys):
        assert main(["demo", "--pes", "8", "--seed", "0", "--json"]) == 0
        zero = json.loads(capsys.readouterr().out)
        assert main(["demo", "--pes", "8", "--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert zero == default

    def test_seed_changes_arrival_pattern_reproducibly(self, capsys):
        assert main(["demo", "--pes", "8", "--seed", "7", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["demo", "--pes", "8", "--seed", "7", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert main(["demo", "--pes", "8", "--json"]) == 0
        lockstep = json.loads(capsys.readouterr().out)
        # staggered start changes timing but not correctness
        assert first["results"]["final_counter"] == 32
        assert first["results"]["cycles"] != lockstep["results"]["cycles"]

    def test_hotspot_seed_flag(self, capsys):
        assert main(["hotspot", "--pes", "8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "combining" in out and "serialized" in out


class TestSweepCommand:
    def test_parser_knows_sweep_and_cache(self):
        parser = build_parser()
        assert parser.parse_args(["sweep", "fig7"]).command == "sweep"
        assert parser.parse_args(["cache"]).command == "cache"

    def test_sweep_fig7_serial_text_summary(self, capsys):
        assert main(["sweep", "fig7", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "backend=serial" in out
        assert "computed 6" in out

    def test_sweep_backend_parity_serial_vs_sharded(self, capsys, tmp_path):
        assert main(["sweep", "fig7", "--json",
                     "--cache-dir", str(tmp_path / "a")]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["sweep", "fig7", "--json", "--backend", "sharded",
                     "--shards", "2", "--cache-dir", str(tmp_path / "b")]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert serial["sweep"]["backend"] == "serial"
        assert sharded["sweep"]["backend"] == "sharded"
        assert json.dumps(serial["results"], sort_keys=True) \
            == json.dumps(sharded["results"], sort_keys=True)
        assert sharded["backend_stats"]["workers"] == 2

    def test_sweep_unknown_backend_is_actionable(self):
        with pytest.raises(SystemExit, match="sharded"):
            main(["sweep", "fig7", "--backend", "bogus", "--no-cache"])

    def test_sweep_shards_alone_implies_parallelism(self, capsys):
        assert main(["sweep", "fig7", "--backend", "sharded", "--shards", "2",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out

    def test_sweep_spec_json_file(self, capsys, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "experiment": "debug.echo",
            "base": {"tag": "cli"},
            "axes": [{"name": "n", "values": [1, 2, 3]}],
            "seed": 4,
        }))
        assert main(["sweep", "--spec-json", str(spec_file), "--json",
                     "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["echo"]["n"] for r in payload["results"]] == [1, 2, 3]

    def test_sweep_without_preset_or_spec_exits(self):
        with pytest.raises(SystemExit, match="preset"):
            main(["sweep", "--no-cache"])

    def test_sweep_adaptive_cross_topology(self, capsys, tmp_path):
        assert main(["sweep", "cross-topology", "--adaptive",
                     "--cycles", "120",
                     "--rate", "0.02", "--rate", "0.05", "--rate", "0.08",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "adaptive sweep" in out
        assert "seed" in out and "audited estimate error" in out

    def test_sweep_adaptive_json_report(self, capsys, tmp_path):
        assert main(["sweep", "cross-topology", "--adaptive", "--json",
                     "--cycles", "120",
                     "--rate", "0.02", "--rate", "0.05", "--rate", "0.08",
                     "--cache-dir", str(tmp_path / "d")]) == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["results"]
        assert report["total_points"] == 9  # 3 topologies x 3 rates
        assert report["simulated_points"] + report["skipped_points"] == 9
        assert len(report["points"]) == 9


class TestCacheCommand:
    def test_stats_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out

    def test_stats_json_after_sweep(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "c")
        assert main(["sweep", "fig7", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "--json", "--cache-dir", cache_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]["disk"]["entries"] == 6
        assert payload["results"]["disk"]["bytes"] > 0
        assert "session" in payload["results"]

    def test_clear_removes_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "c")
        assert main(["sweep", "fig7", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "--clear", "--cache-dir", cache_dir]) == 0
        assert "removed 6 entries" in capsys.readouterr().out
        assert main(["cache", "--json", "--cache-dir", cache_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]["disk"]["entries"] == 0
