"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("demo", "fig7", "table1", "packaging", "hotspot",
                        "stats", "trace"):
            args = parser.parse_args([command])
            assert args.command == command


class TestCommands:
    def test_demo_prints_combining_story(self, capsys):
        assert main(["demo", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "final counter:     32" in out
        assert "memory accesses:" in out

    def test_fig7_prints_curves(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "k=4 d=2" in out
        assert "sat" in out  # saturated entries rendered

    def test_packaging_prints_paper_numbers(self, capsys):
        assert main(["packaging"]) == 0
        out = capsys.readouterr().out
        assert "65536" in out
        assert "352" in out and "672" in out

    def test_hotspot_shows_both_columns(self, capsys):
        assert main(["hotspot", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "combining" in out and "serialized" in out
        assert "combines by switch stage" in out
        assert "round-trip histogram" in out

    def test_table1_prints_four_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("weather-16", "weather-48", "tred2-16", "poisson-16"):
            assert name in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "N\\PE" in out

    def test_fig7_plot(self, capsys):
        assert main(["fig7", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "T (cycles)" in out
        assert "k=4 d=2" in out

    def test_queue_race(self, capsys, monkeypatch):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parents[1])
        assert main(["queue"]) == 0
        out = capsys.readouterr().out
        assert "lock-free" in out and "locked" in out

    def test_stats_prints_metrics_table(self, capsys):
        assert main(["stats", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "network.combines{stage=0}" in out
        assert "machine.round_trip_cycles" in out

    def test_trace_prints_events(self, capsys):
        assert main(["trace", "--pes", "4", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "issue" in out
        assert out.count("\n") <= 7  # header + 5 events + trailing


class TestJsonOutput:
    def test_demo_json(self, capsys):
        assert main(["demo", "--pes", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["final_counter"] == 32
        assert payload["requests_issued"] == 32

    def test_fig7_json(self, capsys):
        assert main(["fig7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["series"]) == 6
        assert all("points" in s for s in payload["series"])

    def test_stats_json_carries_metrics(self, capsys):
        assert main(["stats", "--pes", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {sample["name"] for sample in payload["metrics"]}
        assert "network.combines" in names
        assert "machine.round_trip_cycles" in names
        stage_counts = [
            sample["value"] for sample in payload["metrics"]
            if sample["name"] == "network.combines"
        ]
        assert sum(stage_counts) == payload["combines"]

    def test_trace_json(self, capsys):
        assert main(["trace", "--pes", "4", "--limit", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3
        assert all(event["kind"] == "issue" for event in payload)
