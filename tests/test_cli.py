"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("demo", "fig7", "table1", "packaging", "hotspot",
                        "stats", "trace"):
            args = parser.parse_args([command])
            assert args.command == command


class TestCommands:
    def test_demo_prints_combining_story(self, capsys):
        assert main(["demo", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "final counter:     32" in out
        assert "memory accesses:" in out

    def test_fig7_prints_curves(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "k=4 d=2" in out
        assert "sat" in out  # saturated entries rendered

    def test_packaging_prints_paper_numbers(self, capsys):
        assert main(["packaging"]) == 0
        out = capsys.readouterr().out
        assert "65536" in out
        assert "352" in out and "672" in out

    def test_hotspot_shows_both_columns(self, capsys):
        assert main(["hotspot", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "combining" in out and "serialized" in out
        assert "combines by switch stage" in out
        assert "round-trip histogram" in out

    def test_table1_prints_four_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("weather-16", "weather-48", "tred2-16", "poisson-16"):
            assert name in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "N\\PE" in out

    def test_fig7_plot(self, capsys):
        assert main(["fig7", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "T (cycles)" in out
        assert "k=4 d=2" in out

    def test_queue_race(self, capsys, monkeypatch):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parents[1])
        assert main(["queue"]) == 0
        out = capsys.readouterr().out
        assert "lock-free" in out and "locked" in out

    def test_stats_prints_metrics_table(self, capsys):
        assert main(["stats", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "network.combines{stage=0}" in out
        assert "machine.round_trip_cycles" in out

    def test_trace_prints_events(self, capsys):
        assert main(["trace", "--pes", "4", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "issue" in out
        assert out.count("\n") <= 7  # header + 5 events + trailing


class TestJsonOutput:
    """Every --json path emits the same envelope: schema_version,
    command, optional spec/sweep echoes, and the payload in results."""

    @staticmethod
    def _envelope(capsys, command):
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["command"] == command
        return payload

    def test_demo_json(self, capsys):
        assert main(["demo", "--pes", "8", "--json"]) == 0
        payload = self._envelope(capsys, "demo")
        assert payload["results"]["final_counter"] == 32
        assert payload["results"]["requests_issued"] == 32

    def test_fig7_json(self, capsys):
        assert main(["fig7", "--json"]) == 0
        payload = self._envelope(capsys, "fig7")
        assert payload["spec"]["experiment"] == "fig7.design_curve"
        assert payload["sweep"]["cached_points"] == 0
        assert len(payload["results"]) == 6
        assert all("points" in s for s in payload["results"])

    def test_fig7_json_second_run_is_cached(self, capsys):
        assert main(["fig7", "--json"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--json"]) == 0
        payload = self._envelope(capsys, "fig7")
        assert payload["sweep"]["cached_points"] == 6
        assert payload["sweep"]["computed_points"] == 0

    def test_table1_json(self, capsys):
        assert main(["table1", "--json"]) == 0
        payload = self._envelope(capsys, "table1")
        programs = {row["program"] for row in payload["results"]}
        assert programs == {
            "weather-16", "weather-48", "tred2-16", "poisson-16",
        }

    def test_hotspot_json(self, capsys):
        assert main(["hotspot", "--pes", "8", "--json"]) == 0
        payload = self._envelope(capsys, "hotspot")
        on = payload["results"]["combining"]
        off = payload["results"]["serialized"]
        assert on["memory_accesses"] < off["memory_accesses"]

    def test_queue_json(self, capsys):
        assert main(["queue", "--json"]) == 0
        payload = self._envelope(capsys, "queue")
        assert [row["pes"] for row in payload["results"]] == [2, 4, 8, 16]

    def test_packaging_json(self, capsys):
        assert main(["packaging", "--json"]) == 0
        payload = self._envelope(capsys, "packaging")
        assert payload["pes"] == 4096
        assert any(row["value"] == 4096 for row in payload["results"])

    def test_stats_json_carries_metrics(self, capsys):
        assert main(["stats", "--pes", "8", "--json"]) == 0
        payload = self._envelope(capsys, "stats")["results"]
        names = {sample["name"] for sample in payload["metrics"]}
        assert "network.combines" in names
        assert "machine.round_trip_cycles" in names
        stage_counts = [
            sample["value"] for sample in payload["metrics"]
            if sample["name"] == "network.combines"
        ]
        assert sum(stage_counts) == payload["combines"]

    def test_trace_json(self, capsys):
        assert main(["trace", "--pes", "4", "--limit", "3", "--json"]) == 0
        payload = self._envelope(capsys, "trace")["results"]
        assert len(payload) == 3
        assert all(event["kind"] == "issue" for event in payload)


class TestSweepFlags:
    def test_no_cache_never_caches(self, capsys):
        assert main(["fig7", "--json", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["cached_points"] == 0

    def test_refresh_recomputes(self, capsys):
        assert main(["fig7", "--json"]) == 0
        capsys.readouterr()
        assert main(["fig7", "--json", "--refresh"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["cached_points"] == 0
        assert payload["sweep"]["computed_points"] == 6

    def test_cache_dir_flag(self, capsys, tmp_path):
        cache_dir = tmp_path / "elsewhere"
        assert main(["fig7", "--json", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert any(cache_dir.rglob("*.json"))
        assert main(["fig7", "--json", "--cache-dir", str(cache_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["cached_points"] == 6


class TestSeedFlag:
    def test_seed_zero_is_lockstep_default(self, capsys):
        assert main(["demo", "--pes", "8", "--seed", "0", "--json"]) == 0
        zero = json.loads(capsys.readouterr().out)
        assert main(["demo", "--pes", "8", "--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert zero == default

    def test_seed_changes_arrival_pattern_reproducibly(self, capsys):
        assert main(["demo", "--pes", "8", "--seed", "7", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["demo", "--pes", "8", "--seed", "7", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert main(["demo", "--pes", "8", "--json"]) == 0
        lockstep = json.loads(capsys.readouterr().out)
        # staggered start changes timing but not correctness
        assert first["results"]["final_counter"] == 32
        assert first["results"]["cycles"] != lockstep["results"]["cycles"]

    def test_hotspot_seed_flag(self, capsys):
        assert main(["hotspot", "--pes", "8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "combining" in out and "serialized" in out
