"""Unit tests for the cache's asynchronous-backing interface
(probe/install/invalidate — the machine-integration path)."""

import pytest

from repro.memory.cache import Segment, WriteBackCache


def make_cache(lines=2):
    writes = []
    cache = WriteBackCache(
        lines,
        1,
        lambda addr: (_ for _ in ()).throw(AssertionError("sync read")),
        lambda addr, value: writes.append((addr, value)),
    )
    return cache, writes


class TestProbe:
    def test_miss_then_install_then_hit(self):
        cache, _ = make_cache()
        hit, value = cache.probe(5)
        assert not hit and value is None
        cache.install(5, 42)
        hit, value = cache.probe(5)
        assert hit and value == 42

    def test_probe_counts_stats(self):
        cache, _ = make_cache()
        cache.probe(1)
        cache.install(1, 7)
        cache.probe(1)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_probe_uncacheable_is_not_a_miss(self):
        cache, _ = make_cache()
        cache.add_segment(Segment("s", base=0, length=4, cacheable=False))
        hit, _ = cache.probe(0)
        assert not hit
        assert cache.stats.misses == 0

    def test_probe_refreshes_lru(self):
        cache, _ = make_cache(lines=2)
        cache.install(1, 10)
        cache.install(2, 20)
        cache.probe(1)  # 2 becomes LRU
        evicted = cache.install(3, 30)
        assert not cache.contains(2)
        assert cache.contains(1)
        assert evicted == ()  # 2 was clean


class TestInstall:
    def test_dirty_eviction_returned_not_written(self):
        cache, writes = make_cache(lines=1)
        cache.install(1, 10, dirty=True)
        evicted = cache.install(2, 20)
        assert evicted == ((1, 10),)
        assert writes == []  # caller owns the write-back

    def test_clean_eviction_silent(self):
        cache, _ = make_cache(lines=1)
        cache.install(1, 10)
        assert cache.install(2, 20) == ()

    def test_reinstall_merges_dirty_bit(self):
        cache, _ = make_cache()
        cache.install(1, 10, dirty=True)
        cache.install(1, 11)  # clean write over dirty line keeps dirty
        assert cache.dirty_words() == 1
        hit, value = cache.probe(1)
        assert value == 11

    def test_requires_word_lines(self):
        cache = WriteBackCache(2, 4, lambda a: 0, lambda a, v: None)
        with pytest.raises(ValueError, match="line_size"):
            cache.install(0, 1)


class TestInvalidate:
    def test_dirty_invalidate_returns_write_back(self):
        cache, _ = make_cache()
        cache.install(3, 33, dirty=True)
        assert cache.invalidate(3) == (3, 33)
        assert not cache.contains(3)

    def test_clean_invalidate_returns_none(self):
        cache, _ = make_cache()
        cache.install(3, 33)
        assert cache.invalidate(3) is None

    def test_absent_invalidate_is_noop(self):
        cache, _ = make_cache()
        assert cache.invalidate(9) is None

    def test_invalidate_without_write_back_discards(self):
        cache, _ = make_cache()
        cache.install(3, 33, dirty=True)
        assert cache.invalidate(3, write_back=False) is None
        assert not cache.contains(3)
