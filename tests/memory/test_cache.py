"""Tests for the write-back cache with release/flush (sections 3.2, 3.4)."""

import pytest

from repro.memory.cache import (
    Segment,
    WriteBackCache,
    reclaim_protocol,
    spawn_protocol,
)


class Backing:
    """A central-memory stand-in that counts traffic."""

    def __init__(self):
        self.store: dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, address):
        self.reads += 1
        return self.store.get(address, 0)

    def write(self, address, value):
        self.writes += 1
        self.store[address] = value


def make_cache(lines=4, line_size=2):
    backing = Backing()
    cache = WriteBackCache(lines, line_size, backing.read, backing.write)
    return cache, backing


class TestReadWrite:
    def test_miss_then_hit(self):
        cache, backing = make_cache()
        backing.store[3] = 30
        assert cache.read(3) == 30
        assert cache.stats.misses == 1
        assert cache.read(3) == 30
        assert cache.stats.hits == 1
        assert backing.reads == 2  # one line of 2 words filled once

    def test_write_back_not_write_through(self):
        """Writes do not reach central memory until eviction/flush."""
        cache, backing = make_cache()
        cache.write(0, 99)
        assert backing.store.get(0) is None
        assert cache.dirty_words() == 1

    def test_eviction_writes_only_dirty_words(self):
        cache, backing = make_cache(lines=1, line_size=4)
        cache.write(1, 11)  # line 0 dirty in word 1 only
        cache.read(5)  # fill line 1 -> evict line 0
        assert backing.writes == 1
        assert backing.store[1] == 11

    def test_lru_eviction_order(self):
        cache, backing = make_cache(lines=2, line_size=1)
        cache.write(0, 1)
        cache.write(1, 2)
        cache.read(0)  # touch 0: line 1 is now LRU
        cache.write(2, 3)  # evicts line for address 1
        assert backing.store.get(1) == 2
        assert backing.store.get(0) is None

    def test_hit_ratio(self):
        cache, _ = make_cache()
        cache.read(0)
        cache.read(0)
        cache.read(0)
        cache.read(0)
        assert cache.stats.hit_ratio == 0.75


class TestFlush:
    def test_flush_writes_dirty_and_keeps_resident(self):
        cache, backing = make_cache()
        cache.write(0, 5)
        cache.write(1, 6)
        written = cache.flush()
        assert written == 2
        assert backing.store[0] == 5 and backing.store[1] == 6
        assert cache.resident_lines == 1
        assert cache.dirty_words() == 0
        # subsequent read is still a hit
        assert cache.read(0) == 5
        assert cache.stats.hits >= 1

    def test_flush_segment_only(self):
        cache, backing = make_cache(lines=4, line_size=1)
        cache.add_segment(Segment("a", base=0, length=2))
        cache.add_segment(Segment("b", base=10, length=2))
        cache.write(0, 1)
        cache.write(10, 2)
        cache.flush("a")
        assert backing.store.get(0) == 1
        assert backing.store.get(10) is None

    def test_task_switch_scenario(self):
        """Flush before a task migrates: the new PE's cache must see the
        values through central memory."""
        backing = Backing()
        cache_a = WriteBackCache(4, 1, backing.read, backing.write)
        cache_b = WriteBackCache(4, 1, backing.read, backing.write)
        cache_a.write(7, 123)
        cache_a.flush()
        assert cache_b.read(7) == 123


class TestRelease:
    def test_release_drops_without_write_back(self):
        """'The release command marks a cache entry as available without
        performing a central memory update' — so dirty private data dies
        quietly, saving the write-back traffic."""
        cache, backing = make_cache()
        cache.write(0, 5)
        dropped = cache.release()
        assert dropped == 1
        assert backing.writes == 0
        assert cache.resident_lines == 0

    def test_release_loses_unflushed_writes_by_design(self):
        cache, backing = make_cache()
        cache.write(0, 5)
        cache.release()
        assert cache.read(0) == 0  # refetched from (never-updated) memory

    def test_release_segment_only(self):
        cache, _ = make_cache(lines=4, line_size=1)
        cache.add_segment(Segment("dead", base=0, length=2))
        cache.write(0, 1)
        cache.write(10, 2)
        assert cache.release("dead") == 1
        assert cache.contains(10)
        assert not cache.contains(0)

    def test_unknown_segment_raises(self):
        cache, _ = make_cache()
        with pytest.raises(KeyError):
            cache.release("nope")


class TestCacheability:
    def test_uncacheable_segment_bypasses(self):
        cache, backing = make_cache()
        cache.add_segment(Segment("shared", base=0, length=4, cacheable=False))
        backing.store[1] = 9
        assert cache.read(1) == 9
        assert cache.resident_lines == 0
        cache.write(1, 10)
        assert backing.store[1] == 10  # write-through for uncacheable
        assert cache.stats.uncacheable_reads == 1
        assert cache.stats.uncacheable_writes == 1

    def test_set_cacheable_flips(self):
        cache, _ = make_cache()
        cache.add_segment(Segment("v", base=0, length=4, cacheable=False))
        cache.set_cacheable("v", True)
        cache.read(0)
        assert cache.resident_lines == 1


class TestCoherenceProtocol:
    def test_stale_read_without_protocol(self):
        """The hazard the paper prohibits: two PEs caching shared
        read-write data observe incoherent values."""
        backing = Backing()
        cache_a = WriteBackCache(4, 1, backing.read, backing.write)
        cache_b = WriteBackCache(4, 1, backing.read, backing.write)
        cache_b.read(0)  # B caches stale 0
        cache_a.write(0, 42)
        cache_a.flush()
        assert cache_b.read(0) == 0  # stale! (this is the bug class)

    def test_spawn_protocol_restores_coherence(self):
        """Section 3.4: 'V is flushed, released, and marked shared
        immediately before the subtasks are spawned.'"""
        backing = Backing()
        parent = WriteBackCache(4, 1, backing.read, backing.write)
        child = WriteBackCache(4, 1, backing.read, backing.write)
        parent.add_segment(Segment("v", base=0, length=2))
        child.add_segment(Segment("v", base=0, length=2, cacheable=False))

        parent.write(0, 42)  # parent treats V as private (cached)
        spawn_protocol(parent, "v")  # flush + release + mark shared
        assert backing.store[0] == 42
        assert child.read(0) == 42  # child sees it (uncached access)
        # child updates; parent reads uncached too (V marked shared)
        child.write(0, 43)
        assert parent.read(0) == 43

        # after subtasks complete the parent may re-privatize
        reclaim_protocol(parent, "v")
        assert parent.read(0) == 43  # cached again from memory
        assert parent.resident_lines == 1
