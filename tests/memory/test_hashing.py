"""Tests for address hashing (section 3.1.4)."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.memory.hashing import (
    BlockedTranslation,
    HashedTranslation,
    InterleavedTranslation,
    make_translation,
    module_load_profile,
)


class TestBijection:
    """A translation that aliases addresses corrupts memory; all three
    schemes must be exact bijections on their covered range."""

    @pytest.mark.parametrize("scheme", ["interleaved", "blocked", "hashed"])
    def test_round_trip_everywhere(self, scheme):
        translation = make_translation(scheme, 8, 32)
        seen = set()
        for address in range(translation.capacity):
            module, offset = translation.translate(address)
            assert 0 <= module < 8
            assert 0 <= offset < 32
            assert (module, offset) not in seen
            seen.add((module, offset))
            assert translation.untranslate(module, offset) == address

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 8 * 1024 - 1))
    def test_hashed_round_trip_property(self, address):
        translation = HashedTranslation(8, 1024)
        module, offset = translation.translate(address)
        assert translation.untranslate(module, offset) == address


class TestHotspotSpreading:
    def test_interleaved_fails_on_module_stride(self):
        """Stride = number of modules: everything lands on one module —
        'these N requests are serviced one at a time'."""
        translation = InterleavedTranslation(8, 64)
        addresses = [i * 8 for i in range(32)]
        profile = module_load_profile(translation, addresses)
        assert max(profile) == 32  # total concentration

    def test_hashing_spreads_module_stride(self):
        translation = HashedTranslation(8, 64)
        addresses = [i * 8 for i in range(32)]
        profile = module_load_profile(translation, addresses)
        assert max(profile) <= 12  # near-uniform (ideal = 4)

    def test_blocked_concentrates_contiguous_array(self):
        translation = BlockedTranslation(8, 64)
        addresses = list(range(40))  # one array in module 0
        profile = module_load_profile(translation, addresses)
        assert profile[0] == 40

    def test_hashing_spreads_contiguous_array(self):
        translation = HashedTranslation(8, 64)
        addresses = list(range(40))
        profile = module_load_profile(translation, addresses)
        assert max(profile) <= 12

    @pytest.mark.parametrize("stride", [1, 2, 4, 8, 16, 3, 5, 7])
    def test_hashing_tolerates_any_small_stride(self, stride):
        translation = HashedTranslation(16, 256)
        addresses = [(i * stride) % translation.capacity for i in range(160)]
        profile = module_load_profile(translation, addresses)
        assert max(profile) <= 40  # ideal = 10; allow generous slack


class TestValidation:
    def test_out_of_range_rejected(self):
        translation = InterleavedTranslation(4, 4)
        with pytest.raises(ValueError):
            translation.translate(16)
        with pytest.raises(ValueError):
            translation.translate(-1)

    def test_hashed_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            HashedTranslation(3, 5)

    def test_factory_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown translation"):
            make_translation("bogus", 4, 4)

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            InterleavedTranslation(0, 4)
