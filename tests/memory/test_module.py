"""Tests for memory modules and the banked central memory."""

import pytest

from repro.core.memory_ops import FetchAdd, Load, Store
from repro.memory.module import BankedMemory, MemoryModule


class TestDirectAccess:
    def test_peek_defaults_to_zero(self):
        assert MemoryModule(0).peek(5) == 0

    def test_poke_then_peek(self):
        module = MemoryModule(0)
        module.poke(3, 42)
        assert module.peek(3) == 42

    def test_apply_fetch_add(self):
        module = MemoryModule(0)
        module.poke(1, 10)
        effect = module.apply(FetchAdd(1, 5))
        assert effect.result == 10
        assert module.peek(1) == 15

    def test_bad_latency_rejected(self):
        with pytest.raises(ValueError):
            MemoryModule(0, latency=0)


class TestTimedService:
    def test_service_takes_latency_cycles(self):
        module = MemoryModule(0, latency=3)
        module.enqueue(Store(0, 9), cycle=0)
        completions = []
        for cycle in range(10):
            done = module.tick(cycle)
            if done:
                completions.append(cycle)
        assert completions == [3]
        assert module.peek(0) == 9

    def test_saturated_module_one_per_latency(self):
        module = MemoryModule(0, latency=2)
        for i in range(4):
            module.enqueue(Store(i, i), cycle=0)
        completions = []
        for cycle in range(20):
            if module.tick(cycle):
                completions.append(cycle)
        assert completions == [2, 4, 6, 8]

    def test_history_recording(self):
        module = MemoryModule(0, latency=2)
        module.keep_history = True
        module.enqueue(Load(7), cycle=0)
        for cycle in range(5):
            module.tick(cycle)
        assert len(module.history) == 1
        assert module.history[0].offset == 7
        assert module.history[0].finished - module.history[0].started == 2

    def test_queue_length(self):
        module = MemoryModule(0, latency=2)
        module.enqueue(Load(0), 0)
        module.enqueue(Load(1), 0)
        module.tick(0)
        assert module.queue_length == 2  # one in service, one waiting


class TestBankedMemory:
    def test_indexing(self):
        banked = BankedMemory(4)
        assert len(banked) == 4
        assert banked[2].index == 2

    def test_imbalance_of_uniform_traffic(self):
        banked = BankedMemory(4)
        for module in banked.modules:
            module.accesses = 10
        assert banked.imbalance() == 1.0

    def test_imbalance_of_hotspot(self):
        banked = BankedMemory(4)
        banked[0].accesses = 40
        assert banked.imbalance() == 4.0

    def test_imbalance_with_no_traffic(self):
        assert BankedMemory(4).imbalance() == 1.0
